//! The Fig. 7 scenario: OSP vs ISP vs IFP timelines for bulk bitwise OR
//! over three 1-MiB bit vectors on the illustrative SSD.

use fc_ssd::pipeline::{HostWork, PipelineModel, SenseJob, Stage};
use fc_ssd::{ExecutionReport, SsdConfig};
use serde::{Deserialize, Serialize};

/// The three processing approaches compared in Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Approach {
    /// Outside-storage processing (Fig. 7b).
    Osp,
    /// In-storage processing (Fig. 7c).
    Isp,
    /// In-flash processing, ParaBit-style (Fig. 7d).
    Ifp,
}

impl std::fmt::Display for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Approach::Osp => write!(f, "OSP"),
            Approach::Isp => write!(f, "ISP"),
            Approach::Ifp => write!(f, "IFP"),
        }
    }
}

/// The Fig. 7 scenario parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Scenario {
    /// SSD organization (Fig. 7a).
    pub config: SsdConfig,
    /// Number of operand vectors (3 in the figure: A, B, C).
    pub operands: usize,
}

impl Default for Fig7Scenario {
    fn default() -> Self {
        Self { config: SsdConfig::fig7_example(), operands: 3 }
    }
}

impl Fig7Scenario {
    /// Builds the per-die job list for one approach.
    pub fn jobs(&self, approach: Approach) -> Vec<Vec<SenseJob>> {
        let cfg = &self.config;
        let chunk = (cfg.page_bytes * cfg.planes_per_die) as u64;
        let per_die: Vec<SenseJob> = match approach {
            Approach::Osp => vec![SenseJob::read_to_host(cfg); self.operands],
            Approach::Isp => {
                let mut v = vec![SenseJob::read_to_controller(cfg); self.operands - 1];
                v.push(SenseJob {
                    latency_us: cfg.tr_us,
                    dma_bytes: chunk,
                    ext_bytes: chunk,
                    norm_power: 1.0,
                });
                v
            }
            Approach::Ifp => {
                let mut v = vec![SenseJob::sense_only(cfg.tr_us, 1.0); self.operands - 1];
                v.push(SenseJob {
                    latency_us: cfg.tr_us,
                    dma_bytes: chunk,
                    ext_bytes: chunk,
                    norm_power: 1.0,
                });
                v
            }
        };
        vec![per_die; cfg.total_dies()]
    }

    /// Runs one approach with tracing (for timeline rendering).
    pub fn run(&self, approach: Approach) -> ExecutionReport {
        PipelineModel::new(self.config.clone())
            .run_traced(&self.jobs(approach), HostWork::default())
    }

    /// Runs all three approaches.
    pub fn run_all(&self) -> Vec<(Approach, ExecutionReport)> {
        [Approach::Osp, Approach::Isp, Approach::Ifp]
            .into_iter()
            .map(|a| (a, self.run(a)))
            .collect()
    }
}

/// Renders channel 0's trace as an ASCII timeline (one row per die and
/// stage), the textual equivalent of Fig. 7's boxes.
pub fn render_channel_timeline(
    report: &ExecutionReport,
    config: &SsdConfig,
    width: usize,
) -> String {
    let horizon = report.makespan_us.max(1.0);
    let scale = |t: f64| ((t / horizon) * (width as f64 - 1.0)).round() as usize;
    let mut out = String::new();
    for die in 0..config.dies_per_channel {
        for (stage, glyph) in [(Stage::Sense, 'S'), (Stage::Dma, 'D'), (Stage::Ext, 'E')] {
            let mut row = vec![' '; width];
            for e in report.trace.iter().filter(|e| e.die == die && e.stage == stage) {
                let a = scale(e.start_us);
                let b = scale(e.end_us).max(a + 1).min(width);
                for c in row.iter_mut().take(b).skip(a) {
                    *c = glyph;
                }
            }
            let line: String = row.into_iter().collect();
            out.push_str(&format!("die{die} {} |{line}|\n", stage_label(stage)));
        }
    }
    out.push_str(&format!(
        "0 µs {:>width$.0} µs  (bottleneck: {})\n",
        horizon,
        report.bottleneck(),
        width = width.saturating_sub(9)
    ));
    out
}

fn stage_label(stage: Stage) -> &'static str {
    match stage {
        Stage::Sense => "sense",
        Stage::Dma => "dma  ",
        Stage::Ext => "ext  ",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_numbers() {
        let s = Fig7Scenario::default();
        let all = s.run_all();
        let t = |a: Approach| all.iter().find(|(x, _)| *x == a).unwrap().1.makespan_us;
        // Paper: OSP 471 µs, ISP 431 µs, IFP 335 µs.
        assert!((t(Approach::Osp) - 471.0).abs() < 30.0, "OSP {}", t(Approach::Osp));
        assert!((t(Approach::Isp) - 431.0).abs() < 30.0, "ISP {}", t(Approach::Isp));
        assert!((t(Approach::Ifp) - 335.0).abs() < 30.0, "IFP {}", t(Approach::Ifp));
    }

    #[test]
    fn fig7_bottlenecks() {
        let s = Fig7Scenario::default();
        assert_eq!(s.run(Approach::Osp).bottleneck(), Stage::Ext);
        assert_eq!(s.run(Approach::Isp).bottleneck(), Stage::Dma);
        assert_eq!(s.run(Approach::Ifp).bottleneck(), Stage::Sense);
    }

    #[test]
    fn timeline_renders_all_stages() {
        let s = Fig7Scenario::default();
        let r = s.run(Approach::Osp);
        let text = render_channel_timeline(&r, &s.config, 72);
        assert!(text.contains('S') && text.contains('D') && text.contains('E'));
        assert!(text.lines().count() >= 3 * s.config.dies_per_channel);
    }
}
