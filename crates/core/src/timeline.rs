//! The Fig. 7 scenario: OSP vs ISP vs IFP timelines for bulk bitwise OR
//! over three 1-MiB bit vectors on the illustrative SSD.

use fc_ssd::pipeline::{HostWork, PipelineModel, SenseJob, Stage};
use fc_ssd::{ExecutionReport, SsdConfig};
use serde::{Deserialize, Serialize};

/// The three processing approaches compared in Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Approach {
    /// Outside-storage processing (Fig. 7b).
    Osp,
    /// In-storage processing (Fig. 7c).
    Isp,
    /// In-flash processing, ParaBit-style (Fig. 7d).
    Ifp,
}

impl std::fmt::Display for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Approach::Osp => write!(f, "OSP"),
            Approach::Isp => write!(f, "ISP"),
            Approach::Ifp => write!(f, "IFP"),
        }
    }
}

/// The Fig. 7 scenario parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Scenario {
    /// SSD organization (Fig. 7a).
    pub config: SsdConfig,
    /// Number of operand vectors (3 in the figure: A, B, C).
    pub operands: usize,
}

impl Default for Fig7Scenario {
    fn default() -> Self {
        Self { config: SsdConfig::fig7_example(), operands: 3 }
    }
}

/// Errors building a [`Fig7Scenario`] job list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimelineError {
    /// The scenario needs at least two operand vectors: bulk bitwise OR
    /// is binary at minimum, and with fewer operands the ISP/IFP job
    /// lists degenerate (0 operands used to underflow and panic; 1
    /// operand silently modeled a result-transfer pass with nothing to
    /// combine).
    TooFewOperands {
        /// Operand count supplied.
        operands: usize,
    },
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::TooFewOperands { operands } => {
                write!(f, "Fig. 7 scenario needs at least 2 operand vectors, got {operands}")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

impl Fig7Scenario {
    /// Builds the per-die job list for one approach.
    ///
    /// # Errors
    ///
    /// [`TimelineError::TooFewOperands`] when `operands < 2` — the
    /// scenario combines operand vectors, so a 0-operand list used to
    /// underflow (and panic) and a 1-operand list silently emitted a
    /// transfer-only pass that misrepresented every approach.
    pub fn jobs(&self, approach: Approach) -> Result<Vec<Vec<SenseJob>>, TimelineError> {
        if self.operands < 2 {
            return Err(TimelineError::TooFewOperands { operands: self.operands });
        }
        let cfg = &self.config;
        let chunk = (cfg.page_bytes * cfg.planes_per_die) as u64;
        let per_die: Vec<SenseJob> = match approach {
            Approach::Osp => vec![SenseJob::read_to_host(cfg); self.operands],
            Approach::Isp => {
                let mut v = vec![SenseJob::read_to_controller(cfg); self.operands - 1];
                v.push(SenseJob {
                    latency_us: cfg.tr_us,
                    dma_bytes: chunk,
                    ext_bytes: chunk,
                    norm_power: 1.0,
                });
                v
            }
            Approach::Ifp => {
                let mut v = vec![SenseJob::sense_only(cfg.tr_us, 1.0); self.operands - 1];
                v.push(SenseJob {
                    latency_us: cfg.tr_us,
                    dma_bytes: chunk,
                    ext_bytes: chunk,
                    norm_power: 1.0,
                });
                v
            }
        };
        Ok(vec![per_die; cfg.total_dies()])
    }

    /// Runs one approach with tracing (for timeline rendering).
    ///
    /// # Errors
    ///
    /// Same as [`Fig7Scenario::jobs`].
    pub fn run(&self, approach: Approach) -> Result<ExecutionReport, TimelineError> {
        Ok(PipelineModel::new(self.config.clone())
            .run_traced(&self.jobs(approach)?, HostWork::default()))
    }

    /// Runs all three approaches.
    ///
    /// # Errors
    ///
    /// Same as [`Fig7Scenario::jobs`].
    pub fn run_all(&self) -> Result<Vec<(Approach, ExecutionReport)>, TimelineError> {
        [Approach::Osp, Approach::Isp, Approach::Ifp]
            .into_iter()
            .map(|a| Ok((a, self.run(a)?)))
            .collect()
    }
}

/// Renders channel 0's trace as an ASCII timeline (one row per die and
/// stage), the textual equivalent of Fig. 7's boxes.
pub fn render_channel_timeline(
    report: &ExecutionReport,
    config: &SsdConfig,
    width: usize,
) -> String {
    let horizon = report.makespan_us.max(1.0);
    let scale = |t: f64| ((t / horizon) * (width as f64 - 1.0)).round() as usize;
    let mut out = String::new();
    for die in 0..config.dies_per_channel {
        for (stage, glyph) in [(Stage::Sense, 'S'), (Stage::Dma, 'D'), (Stage::Ext, 'E')] {
            let mut row = vec![' '; width];
            for e in report.trace.iter().filter(|e| e.die == die && e.stage == stage) {
                let a = scale(e.start_us);
                let b = scale(e.end_us).max(a + 1).min(width);
                for c in row.iter_mut().take(b).skip(a) {
                    *c = glyph;
                }
            }
            let line: String = row.into_iter().collect();
            out.push_str(&format!("die{die} {} |{line}|\n", stage_label(stage)));
        }
    }
    out.push_str(&format!(
        "0 µs {:>width$.0} µs  (bottleneck: {})\n",
        horizon,
        report.bottleneck(),
        width = width.saturating_sub(9)
    ));
    out
}

fn stage_label(stage: Stage) -> &'static str {
    match stage {
        Stage::Sense => "sense",
        Stage::Dma => "dma  ",
        Stage::Ext => "ext  ",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_few_operands_is_a_proper_error() {
        // Regression: `operands: 0` used to underflow `self.operands - 1`
        // and panic; `operands: 1` silently built a job list with nothing
        // to combine. Both now report `TooFewOperands` for every
        // approach and every entry point.
        for operands in [0usize, 1] {
            let s = Fig7Scenario { operands, ..Fig7Scenario::default() };
            for a in [Approach::Osp, Approach::Isp, Approach::Ifp] {
                assert_eq!(s.jobs(a).unwrap_err(), TimelineError::TooFewOperands { operands });
                assert_eq!(s.run(a).unwrap_err(), TimelineError::TooFewOperands { operands });
            }
            assert!(s.run_all().is_err());
        }
        // The error formats usefully and the minimum valid count works.
        let err = TimelineError::TooFewOperands { operands: 1 };
        assert!(err.to_string().contains("at least 2"));
        let s = Fig7Scenario { operands: 2, ..Fig7Scenario::default() };
        assert!(s.run_all().is_ok());
    }

    #[test]
    fn fig7_numbers() {
        let s = Fig7Scenario::default();
        let all = s.run_all().unwrap();
        let t = |a: Approach| all.iter().find(|(x, _)| *x == a).unwrap().1.makespan_us;
        // Paper: OSP 471 µs, ISP 431 µs, IFP 335 µs.
        assert!((t(Approach::Osp) - 471.0).abs() < 30.0, "OSP {}", t(Approach::Osp));
        assert!((t(Approach::Isp) - 431.0).abs() < 30.0, "ISP {}", t(Approach::Isp));
        assert!((t(Approach::Ifp) - 335.0).abs() < 30.0, "IFP {}", t(Approach::Ifp));
    }

    #[test]
    fn fig7_bottlenecks() {
        let s = Fig7Scenario::default();
        assert_eq!(s.run(Approach::Osp).unwrap().bottleneck(), Stage::Ext);
        assert_eq!(s.run(Approach::Isp).unwrap().bottleneck(), Stage::Dma);
        assert_eq!(s.run(Approach::Ifp).unwrap().bottleneck(), Stage::Sense);
    }

    #[test]
    fn timeline_renders_all_stages() {
        let s = Fig7Scenario::default();
        let r = s.run(Approach::Osp).unwrap();
        let text = render_channel_timeline(&r, &s.config, 72);
        assert!(text.contains('S') && text.contains('D') && text.contains('E'));
        assert!(text.lines().count() >= 3 * s.config.dies_per_channel);
    }
}
