//! The ParaBit baseline (§3.1, Fig. 6) — the state-of-the-art in-flash
//! processing technique Flash-Cosmos is compared against.
//!
//! ParaBit reads operands **serially** with regular single-wordline
//! senses, accumulating in the latch pair:
//!
//! * AND: sense each operand without re-initializing the S-latch
//!   (Fig. 6b) — `operands` senses, one result transfer.
//! * OR: re-initialize S before each sense, transfer after each sense so
//!   the C-latch OR-accumulates (Fig. 6c).
//! * General OR-of-ANDs: per disjunct, S-init + AND-accumulating senses +
//!   one transfer.
//!
//! Every operand costs one full `tR` sensing operation — the serial-
//! sensing bottleneck of §3.2 that MWS removes. The compiler below emits
//! only regular reads (one wordline per command), faithfully modelling a
//! chip *without* MWS support.

use fc_nand::command::{Command, IscmFlags, MwsTarget};

use crate::expr::Nnf;
use crate::planner::{MwsProgram, PlacementMap, PlanError};

/// Compiles an NNF expression into a ParaBit program (serial single-WL
/// reads). Returns the same [`MwsProgram`] container as the Flash-Cosmos
/// planner so both run through identical chip execution.
///
/// Supported shapes (what the ParaBit paper's mechanisms express):
/// literals, AND of literals (at most one raw-complement literal, which
/// must lead), OR of such AND-groups, and XOR of two literals. Anything
/// else returns [`PlanError::Unplannable`].
///
/// # Errors
///
/// See [`PlanError`].
pub fn compile(nnf: &Nnf, placements: &PlacementMap) -> Result<MwsProgram, PlanError> {
    let mut compiler = ParabitCompiler { placements, plane: None };
    if let Nnf::Xor(a, b) = nnf {
        // Same two-read + XOR-logic shape as Flash-Cosmos: the XOR logic
        // pre-dates MWS (§6.1 cites commodity chips).
        let (Nnf::Literal(la), Nnf::Literal(lb)) = (a.as_ref(), b.as_ref()) else {
            return Err(PlanError::UnsupportedXor);
        };
        let ra = compiler.resolve(*la)?;
        let rb = compiler.resolve(*lb)?;
        let commands = vec![
            read_cmd(ra, true, true),
            read_cmd(rb, false, false),
            Command::XorLatch { plane: compiler.plane.unwrap_or(0) },
        ];
        return Ok(MwsProgram {
            commands,
            controller_not: false,
            plane: compiler.plane.unwrap_or(0),
        });
    }

    let disjuncts: Vec<&Nnf> = match nnf {
        Nnf::Or(cs) => cs.iter().collect(),
        other => vec![other],
    };
    let mut commands = Vec::new();
    for (d, disjunct) in disjuncts.iter().enumerate() {
        let first_of_program = d == 0;
        compiler.emit_and_chain(disjunct, first_of_program, &mut commands)?;
    }
    Ok(MwsProgram { commands, controller_not: false, plane: compiler.plane.unwrap_or(0) })
}

/// Number of sensing operations ParaBit needs for an expression — always
/// the operand-reference count (each operand sensed once).
pub fn sense_cost(nnf: &Nnf) -> usize {
    match nnf {
        Nnf::Literal(_) => 1,
        Nnf::And(cs) | Nnf::Or(cs) => cs.iter().map(sense_cost).sum(),
        Nnf::Xor(a, b) => sense_cost(a) + sense_cost(b),
        Nnf::Threshold { k, children } => {
            // ParaBit has no vote counter, so it must execute the exact
            // OR-of-C(n,k)-ANDs expansion serially; each child is sensed
            // once per size-k combination it belongs to, i.e. C(n−1, k−1)
            // times (saturating — the cost is astronomical either way).
            let per_combo = crate::planner::binomial(children.len() - 1, k - 1);
            children
                .iter()
                .map(sense_cost)
                .fold(0usize, |acc, c| acc.saturating_add(c.saturating_mul(per_combo)))
        }
    }
}

struct Resolved {
    wl: fc_nand::geometry::WlAddr,
    raw_positive: bool,
}

fn read_cmd(r: Resolved, init_c: bool, transfer: bool) -> Command {
    Command::Mws {
        flags: IscmFlags { inverse: !r.raw_positive, init_s: true, init_c, transfer },
        targets: vec![MwsTarget::new(r.wl.block(), &[r.wl.wl])],
    }
}

struct ParabitCompiler<'a> {
    placements: &'a PlacementMap,
    plane: Option<u32>,
}

impl<'a> ParabitCompiler<'a> {
    fn resolve(&mut self, lit: crate::expr::Literal) -> Result<Resolved, PlanError> {
        let p = self.placements.get(lit.id).ok_or(PlanError::NoPlacement(lit.id))?;
        match self.plane {
            None => self.plane = Some(p.wl.plane),
            Some(pl) if pl != p.wl.plane => return Err(PlanError::PlaneMismatch),
            _ => {}
        }
        Ok(Resolved { wl: p.wl, raw_positive: lit.negated == p.inverted })
    }

    /// Emits one disjunct: serial AND-accumulating reads ending in a
    /// transfer into the (OR-accumulating) C-latch.
    fn emit_and_chain(
        &mut self,
        disjunct: &Nnf,
        first_of_program: bool,
        commands: &mut Vec<Command>,
    ) -> Result<(), PlanError> {
        let lits: Vec<crate::expr::Literal> = match disjunct {
            Nnf::Literal(l) => vec![*l],
            Nnf::And(cs) => cs
                .iter()
                .map(|c| match c {
                    Nnf::Literal(l) => Ok(*l),
                    _ => Err(PlanError::Unplannable(
                        "ParaBit supports OR-of-AND shapes over literals only".to_string(),
                    )),
                })
                .collect::<Result<_, _>>()?,
            _ => {
                return Err(PlanError::Unplannable(
                    "ParaBit supports OR-of-AND shapes over literals only".to_string(),
                ))
            }
        };
        let mut resolved: Vec<Resolved> =
            lits.into_iter().map(|l| self.resolve(l)).collect::<Result<_, _>>()?;
        // An inverse read re-initializes the S-latch, so at most one
        // raw-complement literal fits an AND chain, and it must lead.
        let complements = resolved.iter().filter(|r| !r.raw_positive).count();
        if complements > 1 {
            return Err(PlanError::Unplannable(
                "ParaBit cannot AND more than one complemented operand (inverse reads \
                 re-initialize the sensing latch); store the operands inverted instead"
                    .to_string(),
            ));
        }
        resolved.sort_by_key(|r| r.raw_positive); // complement (if any) first
        let n = resolved.len();
        for (i, r) in resolved.into_iter().enumerate() {
            let init_c = first_of_program && i == 0;
            let transfer = i + 1 == n;
            let mut cmd = read_cmd(r, init_c, transfer);
            if let Command::Mws { flags, .. } = &mut cmd {
                // Within the chain, only the first read initializes S
                // (inverse reads initialize implicitly).
                flags.init_s = i == 0;
            }
            commands.push(cmd);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use fc_nand::geometry::WlAddr;

    fn placement(n: usize) -> PlacementMap {
        let mut m = PlacementMap::new();
        for i in 0..n {
            // Scatter operands over blocks — ParaBit does not care.
            m.insert(i, WlAddr::new(0, (i % 4) as u32, (i / 4) as u32), false);
        }
        m
    }

    #[test]
    fn and_chain_costs_one_sense_per_operand() {
        let m = placement(6);
        let p = compile(&Expr::and_vars(0..6).to_nnf(), &m).unwrap();
        assert_eq!(p.sense_count(), 6);
        // Only the last command transfers.
        let transfers: Vec<bool> = p
            .commands
            .iter()
            .map(|c| matches!(c, Command::Mws { flags, .. } if flags.transfer))
            .collect();
        assert_eq!(transfers.iter().filter(|&&t| t).count(), 1);
        assert!(transfers[5]);
    }

    #[test]
    fn or_chain_transfers_after_every_sense() {
        let m = placement(4);
        let p = compile(&Expr::or_vars(0..4).to_nnf(), &m).unwrap();
        assert_eq!(p.sense_count(), 4);
        for c in &p.commands {
            match c {
                Command::Mws { flags, targets } => {
                    assert!(flags.init_s && flags.transfer);
                    assert_eq!(targets.len(), 1);
                    assert_eq!(targets[0].wl_count(), 1, "ParaBit senses one WL at a time");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn or_of_ands_is_supported() {
        let m = placement(6);
        let e = Expr::or(vec![Expr::and_vars(0..3), Expr::and_vars(3..6)]);
        let p = compile(&e.to_nnf(), &m).unwrap();
        assert_eq!(p.sense_count(), 6);
    }

    #[test]
    fn single_complement_leads_the_chain() {
        let m = placement(3);
        let e = Expr::and(vec![Expr::not(Expr::var(0)), Expr::var(1), Expr::var(2)]);
        let p = compile(&e.to_nnf(), &m).unwrap();
        match &p.commands[0] {
            Command::Mws { flags, .. } => assert!(flags.inverse, "complement read must lead"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn two_complements_are_rejected() {
        let m = placement(3);
        let e = Expr::and(vec![Expr::not(Expr::var(0)), Expr::not(Expr::var(1)), Expr::var(2)]);
        assert!(matches!(compile(&e.to_nnf(), &m).unwrap_err(), PlanError::Unplannable(_)));
    }

    #[test]
    fn sense_cost_counts_operand_references() {
        let e = Expr::or(vec![Expr::and_vars(0..30), Expr::var(30)]);
        assert_eq!(sense_cost(&e.to_nnf()), 31);
    }

    #[test]
    fn xor_uses_the_latch_xor_logic() {
        let m = placement(2);
        let p = compile(&Expr::xor(Expr::var(0), Expr::var(1)).to_nnf(), &m).unwrap();
        assert_eq!(p.sense_count(), 2);
        assert!(matches!(p.commands[2], Command::XorLatch { .. }));
    }
}
