//! The real-device characterization harness (§5), regenerated from the
//! calibrated models: Figs. 8, 11, 12, 13, 14 plus the §5.2 zero-error
//! validation campaign.
//!
//! The paper ran these on 160 physical chips behind an FPGA controller;
//! here the same sweeps run against the V_TH/RBER models, and the
//! zero-error validation runs Monte-Carlo against the functional chip
//! with error injection (scaled down from the paper's 4.83×10¹¹ bits;
//! the bit count is a parameter).

use fc_bits::BitVec;
use fc_nand::calib;
use fc_nand::chip::NandChip;
use fc_nand::command::{Command, IscmFlags, MwsTarget};
use fc_nand::config::ChipConfig;
use fc_nand::geometry::BlockAddr;
use fc_nand::ispp::ProgramScheme;
use fc_nand::rber::{BlockGrade, RberModel};
use fc_nand::stress::StressState;
use fc_nand::{power, sense};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 8 RBER characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Programming scheme (SLC or MLC in the paper's sweep).
    pub scheme: ProgramScheme,
    /// Data randomization enabled.
    pub randomized: bool,
    /// P/E cycles.
    pub pec: u32,
    /// Retention age, months.
    pub retention_months: f64,
    /// Average RBER.
    pub rber: f64,
}

/// Regenerates the Fig. 8 sweep: SLC/MLC × randomization on/off × PEC
/// {0, 1K, 2K, 3K, 6K, 10K} × retention {0, 1, 2, 3, 6, 12} months.
pub fn fig8_sweep() -> Vec<Fig8Point> {
    let model = RberModel::paper();
    let mut out = Vec::new();
    for scheme in [ProgramScheme::Slc, ProgramScheme::Mlc] {
        for randomized in [true, false] {
            for pec in [0u32, 1_000, 2_000, 3_000, 6_000, 10_000] {
                for months in [0.0, 1.0, 2.0, 3.0, 6.0, 12.0] {
                    let stress =
                        StressState { pec, retention_months: months, reads_since_program: 0 };
                    out.push(Fig8Point {
                        scheme,
                        randomized,
                        pec,
                        retention_months: months,
                        rber: model.rber(scheme, randomized, stress),
                    });
                }
            }
        }
    }
    out
}

/// One point of the Fig. 11 ESP latency/reliability trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig11Point {
    /// `tESP / tPROG` ratio.
    pub tesp_ratio: f64,
    /// Block grade (worst / median / best of the population).
    pub grade: BlockGrade,
    /// Average RBER per 1-KiB data (0.0 at/beyond the zero-error ratio).
    pub rber: f64,
}

/// Regenerates Fig. 11: RBER vs `tESP` for worst/median/best blocks at
/// the §5.1 worst-case stress (10K PEC, 1-year retention, unrandomized).
pub fn fig11_sweep() -> Vec<Fig11Point> {
    let model = RberModel::paper();
    let stress = StressState::worst_case();
    let mut out = Vec::new();
    for grade in [BlockGrade::Worst, BlockGrade::Median, BlockGrade::Best] {
        for step in 0..=10 {
            let ratio = 1.0 + 0.1 * step as f64;
            out.push(Fig11Point {
                tesp_ratio: ratio,
                grade,
                rber: model.rber_graded(ProgramScheme::Esp { ratio }, false, stress, grade),
            });
        }
    }
    out
}

/// Fig. 12: intra-block MWS latency factor vs simultaneously read WLs.
pub fn fig12_sweep() -> Vec<(usize, f64)> {
    [1usize, 4, 8, 16, 24, 32, 40, 48]
        .iter()
        .map(|&n| (n, sense::intra_latency_factor(n)))
        .collect()
}

/// Fig. 13: inter-block MWS latency factor vs activated blocks.
pub fn fig13_sweep() -> Vec<(usize, f64)> {
    [1usize, 2, 4, 8, 16, 32].iter().map(|&n| (n, sense::inter_latency_factor(n))).collect()
}

/// Fig. 14: normalized chip power vs activated blocks, plus the
/// read/program/erase reference lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14Data {
    /// (activated blocks, normalized power).
    pub mws_power: Vec<(usize, f64)>,
    /// Regular-read reference.
    pub read: f64,
    /// Program reference.
    pub program: f64,
    /// Erase reference.
    pub erase: f64,
}

/// Regenerates Fig. 14.
pub fn fig14_sweep() -> Fig14Data {
    Fig14Data {
        mws_power: (1..=5).map(|n| (n, power::mws_power_norm(n))).collect(),
        read: power::read_power_norm(),
        program: power::program_power_norm(),
        erase: power::erase_power_norm(),
    }
}

/// Result of the §5.2-style zero-error validation campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationOutcome {
    /// Total result bits checked.
    pub bits_checked: u64,
    /// Bit errors observed in MWS results (the paper observed zero).
    pub bit_errors: u64,
    /// MWS operations executed.
    pub mws_ops: u64,
}

/// Runs a scaled-down §5.2 validation: ESP-program random operand sets on
/// an error-injecting chip at worst-case stress, run intra- and
/// inter-block MWS, and compare every result bit against ground truth.
///
/// `target_bits` controls the campaign size (the paper checked
/// 4.83×10¹¹ bits on real hardware; CI-scale runs use millions).
pub fn validate_zero_errors(target_bits: u64, seed: u64) -> ValidationOutcome {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut cfg = ChipConfig::tiny_noisy().with_seed(seed);
    cfg.geometry.page_bytes = 2048; // larger pages: more bits per op
    let page_bits = cfg.geometry.page_bits() as u64;
    let wls = cfg.geometry.wls_per_block;
    let mut chip = NandChip::new(cfg);
    chip.set_retention_months(calib::rber::WORST_CASE_RETENTION_MONTHS);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);

    let mut checked = 0u64;
    let mut errors = 0u64;
    let mut ops = 0u64;
    let mut round = 0u32;
    while checked < target_bits {
        let blk_a = BlockAddr::new(0, (2 * round) % 8);
        let blk_b = BlockAddr::new(0, (2 * round + 1) % 8);
        let mut pages_a = Vec::new();
        let mut pages_b = Vec::new();
        for blk in [blk_a, blk_b] {
            chip.execute(Command::Erase { block: blk }).unwrap();
            chip.cycle_block(blk, calib::rber::WORST_CASE_PEC).unwrap();
        }
        for w in 0..wls {
            let a = BitVec::random(page_bits as usize, &mut rng);
            let b = BitVec::random(page_bits as usize, &mut rng);
            chip.execute(Command::esp_program(blk_a.wordline(w), a.clone())).unwrap();
            chip.execute(Command::esp_program(blk_b.wordline(w), b.clone())).unwrap();
            pages_a.push(a);
            pages_b.push(b);
        }
        // Intra-block MWS over all wordlines of block A.
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::all_wls(blk_a, wls)],
            })
            .unwrap();
        let expect = pages_a.iter().skip(1).fold(pages_a[0].clone(), |acc, p| acc.and(p));
        errors += out.page().unwrap().hamming_distance(&expect) as u64;
        checked += page_bits;
        ops += 1;
        // Inter-block MWS: (AND of A) OR (AND of B).
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::all_wls(blk_a, wls), MwsTarget::all_wls(blk_b, wls)],
            })
            .unwrap();
        let and_b = pages_b.iter().skip(1).fold(pages_b[0].clone(), |acc, p| acc.and(p));
        let expect = expect.or(&and_b);
        errors += out.page().unwrap().hamming_distance(&expect) as u64;
        checked += page_bits;
        ops += 1;
        round += 1;
    }
    ValidationOutcome { bits_checked: checked, bit_errors: errors, mws_ops: ops }
}

/// The same campaign with plain (non-ESP) SLC programming — demonstrates
/// why ParaBit-style operation is unreliable (§3.2): errors appear.
pub fn validate_slc_baseline(target_bits: u64, seed: u64) -> ValidationOutcome {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut cfg = ChipConfig::tiny_noisy().with_seed(seed);
    cfg.geometry.page_bytes = 2048;
    let page_bits = cfg.geometry.page_bits() as u64;
    let wls = cfg.geometry.wls_per_block;
    let mut chip = NandChip::new(cfg);
    chip.set_retention_months(calib::rber::WORST_CASE_RETENTION_MONTHS);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);

    let mut checked = 0u64;
    let mut errors = 0u64;
    let mut ops = 0u64;
    let mut round = 0u32;
    while checked < target_bits {
        let blk = BlockAddr::new(0, round % 16);
        chip.execute(Command::Erase { block: blk }).unwrap();
        chip.cycle_block(blk, calib::rber::WORST_CASE_PEC).unwrap();
        let mut pages = Vec::new();
        for w in 0..wls {
            let p = BitVec::random(page_bits as usize, &mut rng);
            chip.execute(Command::Program {
                addr: blk.wordline(w),
                data: p.clone(),
                scheme: ProgramScheme::Slc,
                randomize: false,
            })
            .unwrap();
            pages.push(p);
        }
        let out = chip
            .execute(Command::Mws {
                flags: IscmFlags::single_read(),
                targets: vec![MwsTarget::all_wls(blk, wls)],
            })
            .unwrap();
        let expect = pages.iter().skip(1).fold(pages[0].clone(), |acc, p| acc.and(p));
        errors += out.page().unwrap().hamming_distance(&expect) as u64;
        checked += page_bits;
        ops += 1;
        round += 1;
    }
    ValidationOutcome { bits_checked: checked, bit_errors: errors, mws_ops: ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_sweep_has_full_grid_and_paper_anchors() {
        let points = fig8_sweep();
        assert_eq!(points.len(), 2 * 2 * 6 * 6);
        // Best MLC+randomized point anchors at 8.6e-4.
        let best = points
            .iter()
            .find(|p| {
                p.scheme == ProgramScheme::Mlc
                    && p.randomized
                    && p.pec == 0
                    && p.retention_months == 0.0
            })
            .unwrap();
        assert!((best.rber - 8.6e-4).abs() / 8.6e-4 < 0.05);
        // Worst MLC unrandomized approaches 1.6e-2.
        let worst = points
            .iter()
            .filter(|p| p.scheme == ProgramScheme::Mlc && !p.randomized)
            .map(|p| p.rber)
            .fold(0.0f64, f64::max);
        assert!((worst - 1.6e-2).abs() / 1.6e-2 < 0.25, "worst {worst}");
    }

    #[test]
    fn fig11_zero_beyond_1_9() {
        let points = fig11_sweep();
        for p in &points {
            if p.tesp_ratio >= 1.9 {
                assert_eq!(p.rber, 0.0, "ratio {} grade {:?}", p.tesp_ratio, p.grade);
            } else {
                assert!(p.rber > 0.0);
            }
        }
    }

    #[test]
    fn fig12_13_14_shapes() {
        let f12 = fig12_sweep();
        assert_eq!(f12.first().unwrap().1, 1.0);
        assert!((f12.last().unwrap().1 - 1.033).abs() < 1e-3);
        let f13 = fig13_sweep();
        assert!((f13.last().unwrap().1 - 1.363).abs() < 1e-3);
        let f14 = fig14_sweep();
        assert_eq!(f14.mws_power.len(), 5);
        assert!(f14.mws_power[3].1 < f14.erase);
    }

    #[test]
    fn esp_validation_is_error_free_and_slc_is_not() {
        let esp = validate_zero_errors(2_000_000, 42);
        assert!(esp.bits_checked >= 2_000_000);
        assert_eq!(esp.bit_errors, 0, "ESP campaign must observe zero errors");
        assert!(esp.mws_ops > 0);
        let slc = validate_slc_baseline(2_000_000, 42);
        assert!(slc.bit_errors > 0, "plain SLC at worst-case stress must show errors");
    }
}
