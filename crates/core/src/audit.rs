//! `fc_audit` — a two-pass static analyzer over compiled plans and
//! device metadata.
//!
//! Seven PRs of growth piled up *implicit* cross-layer invariants:
//! placement co-residency (PR 3), generation/epoch stamping (PR 4),
//! budget-bounded maintenance jobs (PR 5), die-disjoint parity stripes
//! (PR 6), ML-operand routing (PR 7). One bug in exactly this class
//! already shipped — PR 5's `serial_senses` mispricing — and was only
//! caught by a pinned-seed replay *after* the fact. This module makes
//! the invariants machine-checkable the way Buddy-RAM-style in-memory
//! engines verify the compiled bitwise program instead of trusting the
//! code generator: the analyzer inspects state, it never executes
//! anything.
//!
//! * **Pass 1 — plan lint** (`enforce_plan`, codes `FC001`–`FC007`)
//!   runs on the output of `compile_batch` before any chip is touched
//!   and checks the plan IR against the operand table: wordline
//!   co-residency, cross-die merge structure, threshold lowering,
//!   ML routing, generation snapshots, die-queue assignment, and sense
//!   accounting.
//! * **Pass 2 — device audit** ([`FlashCosmosDevice::audit`], codes
//!   `FC101`–`FC107`) cross-checks whole-device metadata: FTL aliasing
//!   discipline, parity-stripe integrity and coverage, result-cache
//!   generations, queued-job stamps, and placement/wear bookkeeping.
//!
//! Both passes are wired in under `debug_assertions` — on every batch
//! compile and after every [`FlashCosmosDevice::drain`] — so the whole
//! test suite runs with the analyzer armed while release builds pay
//! nothing. [`AuditConfig`] picks what a finding does per code:
//! [`AuditMode::Deny`] (default) panics on error-severity findings,
//! [`AuditMode::Warn`] prints them, [`AuditMode::Off`] skips the code.
//! Warning-severity findings ([`LintCode::Fc103`] / [`LintCode::Fc104`])
//! never panic: they flag honest, documented protection gaps.
//!
//! The analyzer is validated by a **mutation harness** (the
//! `#[doc(hidden)]` surface below): seeded corruptions of a healthy
//! plan or device — forge a wordline, drop a merge, skew a generation,
//! alias an LPN, drop a parity member, misprice a unit — where each
//! lint code must fire on its matching mutation and stay silent on
//! healthy state. `LINTS.md` at the repo root catalogs every code.

use std::collections::{BTreeSet, HashMap};

use fc_bits::BitVec;
use fc_nand::command::Command;
use fc_ssd::ftl::PageMeta;
use fc_ssd::topology::{PlaneId, Ppa};

use crate::batch::{CompiledBatch, PlannedUnit, QueryBatch, UnitWork};
use crate::crossdie::MergeTree;
use crate::device::{DeviceCore, FcError, FlashCosmosDevice, StoreHints};
use crate::expr::{Nnf, OperandId};
use crate::maintenance::RegroupJob;
use crate::recovery::ScrubJob;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// An honest, documented gap worth surfacing — never fatal.
    Warning,
    /// A broken invariant: executing or serving this state is unsound.
    Error,
}

/// What the enforcement hooks do with findings of a lint code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditMode {
    /// Panic on error-severity findings, print warning-severity ones.
    #[default]
    Deny,
    /// Print every finding, never panic.
    Warn,
    /// Skip the code entirely.
    Off,
}

/// The typed lint codes. `FC0xx` are plan-lint (pass 1) codes, `FC1xx`
/// device-audit (pass 2) codes; see `LINTS.md` for the full catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// Fused wordlines not co-resident in the unit's blocks/planes.
    Fc001,
    /// Cross-die structure broken: merge recipe and leaf partition
    /// disagree, or a partial-count `ThresholdMws` slipped through.
    Fc002,
    /// Threshold lowering out of bounds or polarity-inconsistent.
    Fc003,
    /// A multi-level operand routed into an in-flash execute unit.
    Fc004,
    /// Compile-time generation/epoch snapshot disagrees with the table.
    Fc005,
    /// Die-queue assignment disagrees with cached placement.
    Fc006,
    /// Modeled sense totals or per-query accounting inconsistent.
    Fc007,
    /// Undeclared physical-page aliasing in the FTL map.
    Fc101,
    /// Parity stripe not die-disjoint / double membership / dangling page.
    Fc102,
    /// Coverage gap: an FC data page outside every parity stripe (warn).
    Fc103,
    /// ML pages outside the parity/scrub protection tiers (warn).
    Fc104,
    /// Result-cache entry stamped with an impossible generation.
    Fc105,
    /// Queued maintenance/scrub job not stamped with live state.
    Fc106,
    /// Placement bookkeeping inconsistent (operand/group/wear tables).
    Fc107,
    /// FTL shard out of lockstep with its channel: a mapping in shard
    /// `c` resolves to a physical page on another channel.
    Fc108,
}

impl LintCode {
    /// Every code, plan pass first — iteration order for config and docs.
    pub const ALL: [LintCode; 15] = [
        LintCode::Fc001,
        LintCode::Fc002,
        LintCode::Fc003,
        LintCode::Fc004,
        LintCode::Fc005,
        LintCode::Fc006,
        LintCode::Fc007,
        LintCode::Fc101,
        LintCode::Fc102,
        LintCode::Fc103,
        LintCode::Fc104,
        LintCode::Fc105,
        LintCode::Fc106,
        LintCode::Fc107,
        LintCode::Fc108,
    ];

    /// The code's display form, e.g. `"FC001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::Fc001 => "FC001",
            LintCode::Fc002 => "FC002",
            LintCode::Fc003 => "FC003",
            LintCode::Fc004 => "FC004",
            LintCode::Fc005 => "FC005",
            LintCode::Fc006 => "FC006",
            LintCode::Fc007 => "FC007",
            LintCode::Fc101 => "FC101",
            LintCode::Fc102 => "FC102",
            LintCode::Fc103 => "FC103",
            LintCode::Fc104 => "FC104",
            LintCode::Fc105 => "FC105",
            LintCode::Fc106 => "FC106",
            LintCode::Fc107 => "FC107",
            LintCode::Fc108 => "FC108",
        }
    }

    /// The severity findings of this code carry. `FC103`/`FC104` flag
    /// documented protection gaps and stay warnings; everything else is
    /// a broken invariant.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::Fc103 | LintCode::Fc104 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated invariant.
    pub code: LintCode,
    /// How bad it is (the code's default severity).
    pub severity: Severity,
    /// Where: a structural path like `unit 2 leaf 0 (slot 1)` or
    /// `stripe 4`, not a source location.
    pub location: String,
    /// What is wrong, with the observed values.
    pub message: String,
    /// How to fix it (or which chokepoint was bypassed).
    pub hint: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{} {sev} at {}: {} (fix: {})", self.code, self.location, self.message, self.hint)
    }
}

/// The analyzer ruleset: a default [`AuditMode`] plus per-code
/// overrides. The default configuration denies everything.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    default: AuditMode,
    overrides: HashMap<LintCode, AuditMode>,
}

impl AuditConfig {
    /// Deny-by-default ruleset (what devices start with).
    pub fn deny() -> Self {
        Self::default()
    }

    /// Print-only ruleset: every finding is reported, nothing panics.
    pub fn warn_only() -> Self {
        Self { default: AuditMode::Warn, overrides: HashMap::new() }
    }

    /// Disarmed ruleset: the enforcement hooks do nothing. Explicit
    /// [`FlashCosmosDevice::audit`] calls still report.
    pub fn off() -> Self {
        Self { default: AuditMode::Off, overrides: HashMap::new() }
    }

    /// Overrides the mode of one code.
    #[must_use]
    pub fn with_override(mut self, code: LintCode, mode: AuditMode) -> Self {
        self.overrides.insert(code, mode);
        self
    }

    /// The effective mode of a code.
    pub fn mode_for(&self, code: LintCode) -> AuditMode {
        self.overrides.get(&code).copied().unwrap_or(self.default)
    }

    /// Whether any code is armed at all (the hooks short-circuit when
    /// everything is off).
    pub fn armed(&self) -> bool {
        self.default != AuditMode::Off || self.overrides.values().any(|&m| m != AuditMode::Off)
    }
}

fn finding(code: LintCode, location: String, message: String, hint: &str) -> Finding {
    Finding { code, severity: code.default_severity(), location, message, hint: hint.to_string() }
}

fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.code, &a.location, &a.message).cmp(&(b.code, &b.location, &b.message)));
}

// ---------------------------------------------------------------------------
// Enforcement hooks (wired under `debug_assertions` in batch/session).
// ---------------------------------------------------------------------------

/// Applies the device's ruleset to pass-1 findings over a freshly
/// compiled batch: panic on denied errors, print the rest.
#[cfg(debug_assertions)]
pub(crate) fn enforce_plan(dev: &DeviceCore, compiled: &CompiledBatch) {
    if !dev.audit_cfg.armed() {
        return;
    }
    enforce(&dev.audit_cfg, lint_plan(dev, compiled), "plan");
}

/// Applies the device's ruleset to pass-2 findings after a drain.
#[cfg(debug_assertions)]
pub(crate) fn enforce_device(dev: &DeviceCore) {
    if !dev.audit_cfg.armed() {
        return;
    }
    enforce(&dev.audit_cfg, dev.audit(), "device");
}

#[cfg(debug_assertions)]
fn enforce(cfg: &AuditConfig, findings: Vec<Finding>, pass: &str) {
    let mut fatal: Vec<Finding> = Vec::new();
    for f in findings {
        match cfg.mode_for(f.code) {
            AuditMode::Off => {}
            AuditMode::Warn => eprintln!("[fc_audit:{pass}] {f}"),
            AuditMode::Deny => match f.severity {
                Severity::Warning => eprintln!("[fc_audit:{pass}] {f}"),
                Severity::Error => fatal.push(f),
            },
        }
    }
    if !fatal.is_empty() {
        let mut msg = format!("fc_audit: {} denied finding(s) in the {pass} pass:", fatal.len());
        for f in &fatal {
            msg.push_str("\n  ");
            msg.push_str(&f.to_string());
        }
        panic!("{msg}");
    }
}

// ---------------------------------------------------------------------------
// Pass 1 — plan lint (FC001–FC007).
// ---------------------------------------------------------------------------

/// Multiplicative hasher for the residency map's small `u64` keys. The
/// lint sits on every debug-build compile, so SipHash's constant factor
/// matters more than DoS hardening against adversarial plans.
#[derive(Default)]
struct ResidencyHasher(u64);

impl std::hash::Hasher for ResidencyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, n: u64) {
        let mut h = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
        self.0 = h;
    }
}

/// One physical block's operand pages, batch-wide: the occupied
/// wordline mask plus the `(operand, stripe slot, stored-inverted)`
/// that owns each — inversion rides along so threshold lowering checks
/// need no further FTL lookups.
#[derive(Clone, Copy)]
struct BlockView<'a> {
    pbm: u64,
    owners: &'a [Option<(OperandId, usize, bool)>],
}

fn residency_key(plane_flat: usize, block: u32) -> u64 {
    ((plane_flat as u64) << 32) | u64::from(block)
}

/// Geometries up to this many blocks (every test config by a wide
/// margin) get the dense direct-index table; larger ones hash.
const DENSE_BLOCK_LIMIT: usize = 1 << 14;

/// Batch-wide operand-page residency, indexed by `(plane, block)`.
/// Small geometries resolve lookups with one array read; large ones
/// fall back to the hashed path. Per-block owner rows live in one flat
/// array (`wpb` entries each) so building the map never allocates per
/// block.
struct ResidencyMap {
    /// `plane_flat * blocks_per_plane + block -> block index + 1`
    /// (`0` = no operand pages there). Empty when hashing instead.
    dense: Vec<u32>,
    sparse: HashMap<u64, u32, std::hash::BuildHasherDefault<ResidencyHasher>>,
    pbm: Vec<u64>,
    owners: Vec<Option<(OperandId, usize, bool)>>,
    wpb: usize,
    blocks_per_plane: usize,
}

impl ResidencyMap {
    fn new(total_planes: usize, blocks_per_plane: usize, wpb: usize) -> Self {
        let total = total_planes.saturating_mul(blocks_per_plane);
        Self {
            dense: if total <= DENSE_BLOCK_LIMIT { vec![0; total] } else { Vec::new() },
            sparse: HashMap::default(),
            pbm: Vec::new(),
            owners: Vec::new(),
            wpb,
            blocks_per_plane,
        }
    }

    fn get(&self, plane_flat: usize, block: u32) -> Option<BlockView<'_>> {
        let idx = if self.dense.is_empty() {
            *self.sparse.get(&residency_key(plane_flat, block))? as usize
        } else {
            let v = *self.dense.get(plane_flat * self.blocks_per_plane + block as usize)?;
            if v == 0 {
                return None;
            }
            (v - 1) as usize
        };
        Some(BlockView {
            pbm: *self.pbm.get(idx)?,
            owners: self.owners.get(idx * self.wpb..(idx + 1) * self.wpb)?,
        })
    }

    /// The block's index, materializing an empty entry on first sight.
    fn index(&mut self, plane_flat: usize, block: u32) -> Option<usize> {
        let idx = if self.dense.is_empty() {
            match self.sparse.entry(residency_key(plane_flat, block)) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get() as usize,
                std::collections::hash_map::Entry::Vacant(e) => {
                    let idx = self.pbm.len();
                    e.insert(idx as u32);
                    idx
                }
            }
        } else {
            let slot = self.dense.get_mut(plane_flat * self.blocks_per_plane + block as usize)?;
            if *slot == 0 {
                *slot = self.pbm.len() as u32 + 1;
            }
            (*slot - 1) as usize
        };
        if idx == self.pbm.len() {
            self.pbm.push(0);
            self.owners.resize(self.owners.len() + self.wpb, None);
        }
        Some(idx)
    }
}

/// Reusable per-unit scratch: allocated once per lint pass and recycled
/// across units (and slots), so the healthy path does no allocation
/// inside the unit loop.
#[derive(Default)]
struct UnitScratch {
    /// Operand-id-indexed membership mask for the current unit.
    in_unit: Vec<bool>,
    /// Operand-id-indexed literal-polarity bits (bit 0 — referenced by
    /// a positive literal, bit 1 — by a negated one).
    polarity: Vec<u8>,
    /// Which `polarity` entries to clear when the unit is done.
    touched: Vec<OperandId>,
    /// Complete threshold nodes of the unit expression.
    thresholds: Vec<(usize, Vec<OperandId>)>,
    /// Sorted operand ids referenced by one threshold command.
    ids: Vec<OperandId>,
    /// Counting sort of leaves by slot: counts, prefix sums, scatter
    /// cursor, and the bucketed leaf indices (ascending per slot).
    slot_count: Vec<u32>,
    slot_start: Vec<u32>,
    cursor: Vec<u32>,
    slot_leaves: Vec<usize>,
    /// Merge recipes per slot, and the first recipe's index + 1.
    merge_count: Vec<u32>,
    merge_first: Vec<u32>,
    /// Leaf set referenced by one spanning stripe's merge recipe.
    referenced: Vec<usize>,
}

impl UnitScratch {
    fn new(operands: usize) -> Self {
        Self { in_unit: vec![false; operands], polarity: vec![0u8; operands], ..Self::default() }
    }
}

/// Resolves every non-ML operand page of the batch through the FTL
/// exactly once. Units then validate their activated wordlines with a
/// mask test and an array read instead of re-deriving placement per
/// unit per slot — that one-pass structure is what keeps the lint a
/// small fraction of the compile it guards (`audit/plan_lint_16q`).
///
/// Operand LPNs are dense (the device hands them out from a counter),
/// so the reverse `lpn -> (operand, slot)` table is a flat array and
/// the whole resolution is one hash-free sweep over the mapped pages.
fn batch_residency(dev: &DeviceCore, compiled: &CompiledBatch) -> ResidencyMap {
    let cfg = dev.ssd.config();
    let wpb = cfg.wls_per_block;
    let mut page_of: Vec<Option<(OperandId, usize)>> = vec![None; dev.next_lpn as usize];
    for &(id, _) in &compiled.snapshot {
        let Some(record) = dev.operands.get(id) else { continue };
        if record.ml {
            continue; // ML wordlines never join an MWS sense (FC004)
        }
        for (slot, &lpn) in record.lpns.iter().enumerate() {
            if let Some(entry) = page_of.get_mut(lpn as usize) {
                *entry = Some((id, slot));
            }
        }
    }
    let mut map = ResidencyMap::new(cfg.total_planes(), cfg.blocks_per_plane, wpb);
    for (lpn, ppa, meta) in dev.ssd.mapped_snapshot() {
        let Some(&Some((id, slot))) = page_of.get(lpn as usize) else { continue };
        if ppa.wl as usize >= wpb || ppa.wl >= 64 {
            continue; // beyond any PBM; FC001 flags such activations
        }
        let Some(bi) = map.index(ppa.plane.flat(cfg), ppa.block) else { continue };
        map.pbm[bi] |= 1 << ppa.wl;
        map.owners[bi * wpb + ppa.wl as usize] = Some((id, slot, meta.inverted));
    }
    map
}

/// Lints a compiled batch against the device's operand table and FTL
/// without executing anything. Findings come back sorted by
/// `(code, location)`.
pub(crate) fn lint_plan(dev: &DeviceCore, compiled: &CompiledBatch) -> Vec<Finding> {
    let mut out = Vec::new();
    let n = compiled.queries();

    // FC005 — batch-level epoch and generation snapshot.
    if compiled.epoch != dev.epoch {
        out.push(finding(
            LintCode::Fc005,
            "batch".to_string(),
            format!(
                "compiled at epoch {} but the device is at epoch {}",
                compiled.epoch, dev.epoch
            ),
            "recompile the batch; stale queued batches must go through recompile_batch",
        ));
    }
    for &(id, gen) in &compiled.snapshot {
        let live = dev.operand_generation(id);
        if live != gen {
            out.push(finding(
                LintCode::Fc005,
                "batch snapshot".to_string(),
                format!("operand v{id} snapshotted at generation {gen} but the table holds {live}"),
                "mutations must bump generations through the device chokepoints before compiling",
            ));
        }
    }

    // FC007 — batch-level stats-seed accounting.
    let stats = &compiled.stats_seed;
    if stats.queries != n || stats.per_query.len() != n {
        out.push(finding(
            LintCode::Fc007,
            "batch stats".to_string(),
            format!(
                "stats sized for {} queries ({} per-query rows) but the batch has {n}",
                stats.queries,
                stats.per_query.len()
            ),
            "seed BatchStats from the validated query list, not a separate count",
        ));
    }
    let cached =
        compiled.units.iter().filter(|u| matches!(u.work, UnitWork::Cached { .. })).count();
    if stats.cached_units != cached {
        out.push(finding(
            LintCode::Fc007,
            "batch stats".to_string(),
            format!("stats claim {} cached units but the plan holds {cached}", stats.cached_units),
            "count cached units from the planned work items",
        ));
    }

    let residency = batch_residency(dev, compiled);
    let mut scratch = UnitScratch::new(dev.operands.len());
    let mut covered = vec![false; n];
    for (ui, unit) in compiled.units.iter().enumerate() {
        lint_unit(dev, compiled, &residency, ui, unit, &mut covered, &mut scratch, &mut out);
    }
    for (qi, seen) in covered.iter().enumerate() {
        if !seen {
            out.push(finding(
                LintCode::Fc007,
                format!("query {qi}"),
                "no planned unit feeds this query".to_string(),
                "every query must appear in at least one unit's consumer list",
            ));
        }
    }
    sort_findings(&mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn lint_unit(
    dev: &DeviceCore,
    compiled: &CompiledBatch,
    residency: &ResidencyMap,
    ui: usize,
    unit: &PlannedUnit,
    covered: &mut [bool],
    scratch: &mut UnitScratch,
    out: &mut Vec<Finding>,
) {
    let loc = |suffix: &str| {
        if suffix.is_empty() {
            format!("unit {ui}")
        } else {
            format!("unit {ui} {suffix}")
        }
    };

    // FC007 — unit shape.
    if unit.pages == 0 {
        out.push(finding(
            LintCode::Fc007,
            loc(""),
            "unit covers zero stripe pages".to_string(),
            "operand vectors always occupy at least one page",
        ));
    }
    if unit.consumers.is_empty() {
        out.push(finding(
            LintCode::Fc007,
            loc(""),
            "unit has no consumer queries".to_string(),
            "drop units no query reads",
        ));
    }
    for &q in &unit.consumers {
        match covered.get_mut(q) {
            Some(slot) => *slot = true,
            None => out.push(finding(
                LintCode::Fc007,
                loc(""),
                format!("consumer query id {q} out of range ({} queries)", covered.len()),
                "consumer ids index the submitted batch",
            )),
        }
    }

    // FC005 — per-unit cache-key generations.
    if unit.key.0 != compiled.epoch {
        out.push(finding(
            LintCode::Fc005,
            loc(""),
            format!(
                "cache key stamped epoch {} in a batch compiled at {}",
                unit.key.0, compiled.epoch
            ),
            "unit keys must embed the compile-time epoch",
        ));
    }
    for &(id, gen) in &unit.key.2 {
        let live = dev.operand_generation(id);
        if live != gen {
            out.push(finding(
                LintCode::Fc005,
                loc(""),
                format!(
                    "cache key holds v{id}@{gen} but the operand table holds generation {live}"
                ),
                "the key snapshot must be taken from the operand table at compile time",
            ));
        }
    }

    // FC004 — ML operands only route through controller-eval units.
    let has_ml = unit.key.2.iter().any(|&(id, _)| dev.operands.get(id).is_some_and(|r| r.ml));
    if has_ml && matches!(unit.work, UnitWork::Execute { .. }) {
        out.push(finding(
            LintCode::Fc004,
            loc(""),
            "multi-level operand planned into an in-flash execute unit".to_string(),
            "ML pages are Gray-coded cell levels; route the unit through controller evaluation",
        ));
    }

    let UnitWork::Execute { leaves, slots, direct, merges, senses } = &unit.work else {
        return;
    };

    if slots.len() != leaves.len() || direct.len() != leaves.len() {
        out.push(finding(
            LintCode::Fc007,
            loc(""),
            format!(
                "leaf bookkeeping out of step: {} leaves, {} slots, {} direct flags",
                leaves.len(),
                slots.len(),
                direct.len()
            ),
            "slots and direct flags are per-leaf and must grow with the leaf list",
        ));
        return; // The structural checks below index these in lockstep.
    }

    let cfg = dev.ssd.config();
    for &(id, _) in &unit.key.2 {
        if let Some(flag) = scratch.in_unit.get_mut(id) {
            *flag = true;
        }
    }

    // Expression context is only consulted for threshold lowering; most
    // units are AND/OR-only and never walk the NNF. The walks run
    // lazily, on the first ThresholdMws the leaf loop meets.
    scratch.touched.clear();
    scratch.thresholds.clear();
    let mut thr_init = false;

    // Counting sort of leaves by slot (for the FC002 merge checks and
    // the single-leaf lookups) — one pass, no per-slot churn.
    let pages = unit.pages;
    scratch.slot_count.clear();
    scratch.slot_count.resize(pages, 0);
    for &slot in slots {
        if slot < pages {
            scratch.slot_count[slot] += 1;
        }
    }
    scratch.slot_start.clear();
    scratch.slot_start.resize(pages + 1, 0);
    for s in 0..pages {
        scratch.slot_start[s + 1] = scratch.slot_start[s] + scratch.slot_count[s];
    }
    scratch.cursor.clear();
    scratch.cursor.extend_from_slice(&scratch.slot_start[..pages]);
    scratch.slot_leaves.clear();
    scratch.slot_leaves.resize(slots.len(), 0);
    for (li, &slot) in slots.iter().enumerate() {
        if slot < pages {
            let at = scratch.cursor[slot] as usize;
            scratch.slot_leaves[at] = li;
            scratch.cursor[slot] += 1;
        }
    }
    // The sense total accumulates alongside the structural walk (the
    // PR 5 bug class: pricing must come from the compiled programs).
    let mut actual: u64 = 0;
    for (li, leaf) in leaves.iter().enumerate() {
        let slot = slots[li];
        if slot >= unit.pages {
            actual += leaf.program.sense_count() as u64;
            out.push(finding(
                LintCode::Fc007,
                loc(&format!("leaf {li} (slot {slot})")),
                format!("leaf assigned to slot {slot} of a {}-page unit", unit.pages),
                "stripe slots index the unit's pages",
            ));
            continue;
        }

        // FC006 — die-queue assignment must agree with cached placement:
        // the leaf's plane must hold a unit operand at this slot, and the
        // program must be compiled for that in-die plane.
        if leaf.program.plane != leaf.plane.plane {
            out.push(finding(
                LintCode::Fc006,
                loc(&format!("leaf {li} (slot {slot})")),
                format!(
                    "program compiled for in-die plane {} but queued on {}",
                    leaf.program.plane, leaf.plane.plane
                ),
                "the leaf plane and its program's plane are one decision",
            ));
        }
        let placed = unit.key.2.iter().any(|&(id, _)| {
            dev.operands.get(id).is_some_and(|r| r.planes.get(slot) == Some(&leaf.plane))
        });
        if !placed {
            out.push(finding(
                LintCode::Fc006,
                loc(&format!("leaf {li} (slot {slot})")),
                format!(
                    "leaf queued on die CH{}/D{} plane {} where no unit operand holds slot-{slot} pages",
                    leaf.plane.die.channel, leaf.plane.die.die, leaf.plane.plane
                ),
                "route leaves to the planes the operand table placed the stripe on",
            ));
        }
        let plane_flat = leaf.plane.flat(cfg);

        for (ci, cmd) in leaf.program.commands.iter().enumerate() {
            match cmd {
                Command::Mws { targets, .. } => {
                    actual += 1;
                    for (ti, t) in targets.iter().enumerate() {
                        // FC001 — every fused wordline co-resident in one
                        // block/plane of the unit's operands, duplicate-free.
                        if targets[..ti].iter().any(|p| p.block.block == t.block.block) {
                            out.push(finding(
                                LintCode::Fc001,
                                loc(&format!("leaf {li} (slot {slot}) command {ci}")),
                                format!("block {} targeted twice in one MWS frame", t.block.block),
                                "fuse a block's wordlines into one PBM target",
                            ));
                        }
                        if t.block.plane != leaf.plane.plane {
                            out.push(finding(
                                LintCode::Fc001,
                                loc(&format!("leaf {li} (slot {slot}) command {ci}")),
                                format!(
                                    "target block on in-die plane {} inside a plane-{} program",
                                    t.block.plane, leaf.plane.plane
                                ),
                                "MWS targets must stay in the program's plane",
                            ));
                            continue;
                        }
                        let block = residency.get(plane_flat, t.block.block);
                        let mut bad = t.pbm & !block.map_or(0, |b| b.pbm);
                        if let Some(b) = block {
                            let mut resolved = t.pbm & b.pbm;
                            while resolved != 0 {
                                let wl = resolved.trailing_zeros();
                                resolved &= resolved - 1;
                                match b.owners.get(wl as usize).copied().flatten() {
                                    Some((id, s, _))
                                        if s == slot
                                            && scratch
                                                .in_unit
                                                .get(id)
                                                .copied()
                                                .unwrap_or(false) => {}
                                    _ => bad |= 1 << wl,
                                }
                            }
                        }
                        while bad != 0 {
                            let wl = bad.trailing_zeros();
                            bad &= bad - 1;
                            out.push(finding(
                                LintCode::Fc001,
                                loc(&format!("leaf {li} (slot {slot}) command {ci}")),
                                format!(
                                    "wordline (block {}, wl {wl}) is not a slot-{slot} page of any unit operand",
                                    t.block.block
                                ),
                                "programs may only sense the wordlines the placement map resolved",
                            ));
                        }
                    }
                }
                Command::ThresholdMws { target, k } => {
                    actual += 1;
                    if !thr_init {
                        thr_init = true;
                        collect_literals(&unit.nnf, &mut scratch.polarity, &mut scratch.touched);
                        collect_thresholds(&unit.nnf, &mut scratch.thresholds);
                    }
                    lint_threshold_cmd(
                        unit,
                        (ui, li, ci),
                        leaf.program.controller_not,
                        leaf.program.commands.len(),
                        leaf.plane,
                        target,
                        *k,
                        slot,
                        residency.get(plane_flat, target.block.block),
                        &scratch.in_unit,
                        &scratch.polarity,
                        &scratch.thresholds,
                        &mut scratch.ids,
                        cfg.wls_per_block,
                        out,
                    );
                }
                _ => {}
            }
        }
    }
    if *senses != actual {
        out.push(finding(
            LintCode::Fc007,
            loc(""),
            format!("unit priced at {senses} senses but its leaf programs sense {actual} times"),
            "price units from the compiled programs, never from a separate estimate",
        ));
    }

    // FC002 — the merge recipe and the leaf partition must describe the
    // same cross-die split.
    scratch.merge_count.clear();
    scratch.merge_count.resize(pages, 0);
    scratch.merge_first.clear();
    scratch.merge_first.resize(pages, 0);
    for (mi, (slot, _)) in merges.iter().enumerate() {
        if *slot < pages {
            scratch.merge_count[*slot] += 1;
            if scratch.merge_first[*slot] == 0 {
                scratch.merge_first[*slot] = mi as u32 + 1;
            }
        } else {
            out.push(finding(
                LintCode::Fc002,
                loc(&format!("slot {slot}")),
                "merge recipe for a slot with no leaves".to_string(),
                "merges index the flattened leaf list of their own stripe",
            ));
        }
    }
    for slot in 0..pages {
        let trees = scratch.merge_count[slot];
        let group = &scratch.slot_leaves
            [scratch.slot_start[slot] as usize..scratch.slot_start[slot + 1] as usize];
        if group.is_empty() {
            if trees > 0 {
                out.push(finding(
                    LintCode::Fc002,
                    loc(&format!("slot {slot}")),
                    "merge recipe for a slot with no leaves".to_string(),
                    "merges index the flattened leaf list of their own stripe",
                ));
            }
            continue;
        }
        if let [li] = *group {
            if !direct[li] {
                out.push(finding(
                    LintCode::Fc002,
                    loc(&format!("slot {slot}")),
                    "single-leaf stripe not marked direct".to_string(),
                    "a lone leaf's page is the stripe result; stream it directly",
                ));
            }
            if trees > 0 {
                out.push(finding(
                    LintCode::Fc002,
                    loc(&format!("slot {slot}")),
                    "merge recipe attached to a single-leaf stripe".to_string(),
                    "merges exist only for genuinely spanning stripes",
                ));
            }
            continue;
        }
        // A genuinely spanning stripe (only cross-die units reach here).
        // `group` is ascending, so comparing against the sorted
        // (undeduped) merge references catches both missing and
        // double-consumed leaves.
        if let Some(&li) = group.iter().find(|&&li| direct[li]) {
            out.push(finding(
                LintCode::Fc002,
                loc(&format!("slot {slot}")),
                format!("leaf {li} marked direct inside a {}-leaf spanning stripe", group.len()),
                "spanning stripes buffer partials; only the merge produces the result",
            ));
        }
        if trees != 1 {
            out.push(finding(
                LintCode::Fc002,
                loc(&format!("slot {slot}")),
                format!("{trees} merge recipes for one spanning stripe"),
                "each spanning stripe carries exactly one MergeTree",
            ));
            continue;
        }
        scratch.referenced.clear();
        tree_leaves(&merges[(scratch.merge_first[slot] - 1) as usize].1, &mut scratch.referenced);
        scratch.referenced.sort_unstable();
        if scratch.referenced != group {
            out.push(finding(
                LintCode::Fc002,
                loc(&format!("slot {slot}")),
                format!(
                    "merge references leaves {:?} but the stripe owns {group:?}",
                    scratch.referenced
                ),
                "the merge recipe must consume exactly the stripe's leaves, once each",
            ));
        }
    }

    for &(id, _) in &unit.key.2 {
        if let Some(flag) = scratch.in_unit.get_mut(id) {
            *flag = false;
        }
    }
    for &id in &scratch.touched {
        if let Some(mask) = scratch.polarity.get_mut(id) {
            *mask = 0;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lint_threshold_cmd(
    unit: &PlannedUnit,
    (ui, li, ci): (usize, usize, usize),
    controller_not: bool,
    program_len: usize,
    plane: PlaneId,
    target: &fc_nand::command::MwsTarget,
    chip_k: usize,
    slot: usize,
    block: Option<BlockView<'_>>,
    in_unit: &[bool],
    polarity: &[u8],
    thresholds: &[(usize, Vec<OperandId>)],
    ids: &mut Vec<OperandId>,
    wls_per_block: usize,
    out: &mut Vec<Finding>,
) {
    // Findings are rare on the healthy path, so the location string is
    // only materialized when one fires.
    let cloc = || format!("unit {ui} leaf {li} (slot {slot}) command {ci}");
    let n = target.wl_count();
    // FC003 — chip-side bounds.
    if chip_k < 1 || chip_k > n {
        out.push(finding(
            LintCode::Fc003,
            cloc(),
            format!("threshold k={chip_k} outside 1..={n} activated wordlines"),
            "lower k within the activated-wordline count (dual: k' = n - k + 1)",
        ));
    }
    if n > wls_per_block {
        out.push(finding(
            LintCode::Fc003,
            cloc(),
            format!("{n} activated wordlines exceed the {wls_per_block}-wordline block"),
            "a ThresholdMws is single-block; expand wider votes to OR-of-ANDs",
        ));
    }
    if target.block.plane != plane.plane {
        out.push(finding(
            LintCode::Fc001,
            cloc(),
            format!(
                "threshold target on in-die plane {} inside a plane-{} program",
                target.block.plane, plane.plane
            ),
            "MWS targets must stay in the program's plane",
        ));
        return;
    }

    // Resolve the activated wordlines back to operands (FC001) and their
    // raw storage polarity (FC003).
    ids.clear();
    // Raw polarities still possible for every activated wordline so far:
    // bit 1 — raw-positive, bit 0 — raw-complement.
    let mut possible: u8 = 0b11;
    for wl in target.wls() {
        let owner = block.and_then(|b| b.owners.get(wl as usize).copied().flatten());
        let (id, inverted) = match owner {
            Some((id, s, inverted)) if s == slot && in_unit.get(id).copied().unwrap_or(false) => {
                (id, inverted)
            }
            _ => {
                out.push(finding(
                    LintCode::Fc001,
                    cloc(),
                    format!(
                        "wordline (block {}, wl {wl}) is not a slot-{slot} page of any unit operand",
                        target.block.block
                    ),
                    "programs may only sense the wordlines the placement map resolved",
                ));
                continue;
            }
        };
        ids.push(id);
        let mask = polarity.get(id).copied().unwrap_or(0);
        if mask == 0 {
            continue; // no literal references this operand
        }
        // A literal is raw-positive when its negation matches the stored
        // inversion (planner `resolve`); the wordline's candidate raw
        // polarities are those of the literals referencing its operand.
        let mut candidates = 0u8;
        if mask & 0b01 != 0 {
            candidates |= if inverted { 0b01 } else { 0b10 };
        }
        if mask & 0b10 != 0 {
            candidates |= if inverted { 0b10 } else { 0b01 };
        }
        possible &= candidates;
    }
    if possible == 0 {
        out.push(finding(
            LintCode::Fc003,
            cloc(),
            "activated wordlines mix raw-positive and raw-complement storage".to_string(),
            "a threshold vote needs uniform raw polarity across its wordlines (§6.1)",
        ));
    }

    // FC002 — partial-count ban: every ThresholdMws must realize a
    // *complete* threshold node of the unit expression. A chip-side vote
    // over a subset of a (cross-plane) threshold's literals counts only
    // the local wordlines and is silently wrong.
    ids.sort_unstable();
    ids.dedup();
    let complete = thresholds.iter().any(|(tn, tids)| *tn == n && tids == ids);
    if !complete {
        out.push(finding(
            LintCode::Fc002,
            cloc(),
            format!(
                "chip threshold votes over {n} wordline(s) matching no complete threshold node of the unit expression"
            ),
            "spanning thresholds must expand through the crossdie split, never partial-count on one die",
        ));
        return;
    }

    // FC003 — dual-bound cross-check when the whole unit is one
    // threshold over literals (the try_compile_threshold lowering, which
    // emits single-command programs).
    if program_len != 1 {
        return;
    }
    if let Nnf::Threshold { k: logical_k, children } = &unit.nnf {
        if children.len() == n && possible.count_ones() == 1 {
            let raw_positive = possible & 0b10 != 0;
            let (want_k, want_not) =
                if raw_positive { (n - logical_k + 1, true) } else { (*logical_k, false) };
            if chip_k != want_k || controller_not != want_not {
                out.push(finding(
                    LintCode::Fc003,
                    cloc(),
                    format!(
                        "threshold({logical_k} of {n}) over raw-{} storage lowered to chip k={chip_k}, controller_not={controller_not}; expected k={want_k}, controller_not={want_not}",
                        if raw_positive { "positive" } else { "complement" }
                    ),
                    "raw-positive votes lower through the dual k' = n - k + 1 with a controller NOT",
                ));
            }
        }
    }
}

/// Fills per-operand literal-polarity masks into the shared scratch
/// slice, recording which entries were set so the caller can clear them.
fn collect_literals(nnf: &Nnf, polarity: &mut [u8], touched: &mut Vec<OperandId>) {
    match nnf {
        Nnf::Literal(l) => {
            if let Some(mask) = polarity.get_mut(l.id) {
                if *mask == 0 {
                    touched.push(l.id);
                }
                *mask |= 1 << u8::from(l.negated);
            }
        }
        Nnf::And(cs) | Nnf::Or(cs) => {
            cs.iter().for_each(|c| collect_literals(c, polarity, touched))
        }
        Nnf::Xor(a, b) => {
            collect_literals(a, polarity, touched);
            collect_literals(b, polarity, touched);
        }
        Nnf::Threshold { children, .. } => {
            children.iter().for_each(|c| collect_literals(c, polarity, touched));
        }
    }
}

/// Collects every threshold node whose children are all literals as
/// `(children_count, sorted operand-id set)` — the complete votes a
/// `ThresholdMws` may legitimately realize.
fn collect_thresholds(nnf: &Nnf, out: &mut Vec<(usize, Vec<OperandId>)>) {
    match nnf {
        Nnf::Literal(_) => {}
        Nnf::And(cs) | Nnf::Or(cs) => cs.iter().for_each(|c| collect_thresholds(c, out)),
        Nnf::Xor(a, b) => {
            collect_thresholds(a, out);
            collect_thresholds(b, out);
        }
        Nnf::Threshold { children, .. } => {
            let mut ids = Vec::with_capacity(children.len());
            let mut all_literals = true;
            for c in children {
                match c {
                    Nnf::Literal(l) => {
                        ids.push(l.id);
                    }
                    other => {
                        all_literals = false;
                        collect_thresholds(other, out);
                    }
                }
            }
            if all_literals {
                ids.sort_unstable();
                ids.dedup();
                out.push((children.len(), ids));
            }
        }
    }
}

fn tree_leaves(tree: &MergeTree, out: &mut Vec<usize>) {
    match tree {
        MergeTree::Leaf(i) => out.push(*i),
        MergeTree::Node(_, parts) => parts.iter().for_each(|p| tree_leaves(p, out)),
    }
}

// ---------------------------------------------------------------------------
// Pass 2 — device audit (FC101–FC108).
// ---------------------------------------------------------------------------

impl DeviceCore {
    /// Cross-checks whole-device metadata — FTL aliasing, parity-stripe
    /// integrity and coverage, result-cache generations, queued-job
    /// stamps, placement/wear bookkeeping — and returns the findings,
    /// sorted by `(code, location)`. Inspects only; never executes or
    /// mutates. Wired in automatically after every drain in debug
    /// builds (see [`crate::audit`]).
    pub fn audit(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        self.audit_ftl_aliasing(&mut out);
        self.audit_parity(&mut out);
        self.audit_cache_generations(&mut out);
        self.audit_job_stamps(&mut out);
        self.audit_placement(&mut out);
        self.audit_shard_lockstep(&mut out);
        sort_findings(&mut out);
        out
    }

    /// FC108 — every FTL shard stays in lockstep with its channel:
    /// each mapping held by shard `c` resolves to a physical page whose
    /// plane lies on channel `c`. The router (placement-determined
    /// residency) and the home-first probe both assume this; an entry
    /// in the wrong shard silently degrades every lookup of that page
    /// to a full sequential probe and breaks per-channel accounting.
    fn audit_shard_lockstep(&self, out: &mut Vec<Finding>) {
        let cfg = self.ssd.config();
        for c in 0..self.ssd.ftl_shard_count() {
            for (lpn, ppa, _) in self.ssd.ftl_shard(c).iter_mapped() {
                let channel = cfg.channel_of_plane(ppa.plane.flat(cfg));
                if channel != c {
                    out.push(finding(
                        LintCode::Fc108,
                        format!("ftl shard {c}"),
                        format!(
                            "page {lpn} maps to flat plane {} on channel {channel}, outside shard {c}",
                            ppa.plane.flat(cfg)
                        ),
                        "route mappings through SsdDevice::route; shard residency must follow placement",
                    ));
                }
            }
        }
    }

    /// FC101 — every physical page is mapped by at most one logical page,
    /// except the declared `ml_page` aliasing of multi-level wordlines.
    fn audit_ftl_aliasing(&self, out: &mut Vec<Finding>) {
        let mut by_ppa: HashMap<Ppa, Vec<(u64, PageMeta)>> = HashMap::new();
        for (lpn, ppa, meta) in self.ssd.mapped_snapshot() {
            by_ppa.entry(ppa).or_default().push((lpn, meta));
        }
        for (ppa, mut entries) in by_ppa {
            if entries.len() < 2 {
                continue;
            }
            entries.sort_by_key(|&(lpn, _)| lpn);
            let lpns: Vec<u64> = entries.iter().map(|&(lpn, _)| lpn).collect();
            let loc = format!(
                "ppa (plane {}, block {}, wl {})",
                ppa.plane.flat(self.ssd.config()),
                ppa.block,
                ppa.wl
            );
            let bpc = entries
                .iter()
                .map(|(_, m)| m.scheme.cell_mode().bits_per_cell() as usize)
                .min()
                .unwrap_or(1);
            let pages: BTreeSet<u8> = entries.iter().map(|(_, m)| m.ml_page).collect();
            let declared = bpc > 1 && pages.len() == entries.len() && entries.len() <= bpc;
            if !declared {
                out.push(finding(
                    LintCode::Fc101,
                    loc,
                    format!(
                        "physical page multi-mapped by logical pages {lpns:?} without distinct multi-level ml_page declarations"
                    ),
                    "aliasing is only legal for the 2-3 Gray-code pages of one MLC/TLC wordline",
                ));
            }
        }
    }

    /// FC102/FC103 — parity stripes die-disjoint with no double
    /// membership or dangling pages, and (warn) every non-ML FC data
    /// page covered when parity is enabled.
    fn audit_parity(&self, out: &mut Vec<Finding>) {
        let cfg = self.ssd.config();
        let total_dies = cfg.total_dies();
        let healthy_dies = total_dies.saturating_sub(self.recovery.failed_dies.len());
        let mut stripes: Vec<_> = self.recovery.stripes.iter().collect();
        stripes.sort_by_key(|&(id, _)| id);

        let mut member_count: HashMap<u64, u32> = HashMap::new();
        for (_, s) in &stripes {
            for &m in &s.members {
                *member_count.entry(m).or_insert(0) += 1;
            }
        }
        let mut doubled: BTreeSet<u64> = BTreeSet::new();
        for (id, s) in &stripes {
            let loc = format!("stripe {id}");
            let mut member_dies: Vec<usize> = Vec::new();
            for &m in &s.members {
                if member_count.get(&m).copied().unwrap_or(0) > 1 && doubled.insert(m) {
                    out.push(finding(
                        LintCode::Fc102,
                        loc.clone(),
                        format!("page {m} is a member of more than one parity stripe"),
                        "a page's rebuild source must be unique; re-stripe through the chokepoint",
                    ));
                }
                match self.ssd.translate(m) {
                    Some(ppa) => member_dies.push(ppa.plane.die.flat(cfg)),
                    None => {
                        if !self.recovery.lost_pages.contains(&m) {
                            out.push(finding(
                                LintCode::Fc102,
                                loc.clone(),
                                format!("member page {m} is unmapped and not recorded as lost"),
                                "unprotect pages before trimming them",
                            ));
                        }
                    }
                }
            }
            let distinct: BTreeSet<usize> = member_dies.iter().copied().collect();
            // Die-disjointness is only *required* when enough healthy dies
            // exist — the placement ladder legitimately degrades when
            // failed dies shrink the pool.
            if distinct.len() < member_dies.len() && healthy_dies >= s.members.len() {
                out.push(finding(
                    LintCode::Fc102,
                    loc.clone(),
                    format!(
                        "members share dies ({} distinct for {} mapped members) with {healthy_dies} healthy dies available",
                        distinct.len(),
                        member_dies.len()
                    ),
                    "stripe members must sit on pairwise-distinct dies to survive a die loss",
                ));
            }
            match self.ssd.translate(s.parity_lpn) {
                Some(ppa) => {
                    let pdie = ppa.plane.die.flat(cfg);
                    let spare_healthy_die = (0..total_dies)
                        .any(|d| !self.recovery.failed_dies.contains(&d) && !distinct.contains(&d));
                    if distinct.contains(&pdie) && spare_healthy_die {
                        out.push(finding(
                            LintCode::Fc102,
                            loc.clone(),
                            format!(
                                "parity page {} shares die {pdie} with a member while a healthy die outside the stripe exists",
                                s.parity_lpn
                            ),
                            "place parity on a die disjoint from every member",
                        ));
                    }
                }
                None => {
                    if !self.recovery.lost_pages.contains(&s.parity_lpn) {
                        out.push(finding(
                            LintCode::Fc102,
                            loc,
                            format!(
                                "parity page {} is unmapped and not recorded as lost",
                                s.parity_lpn
                            ),
                            "a stripe without parity cannot rebuild; remove or re-protect it",
                        ));
                    }
                }
            }
        }

        // FC103 (warn) — coverage: with parity enabled, every non-ML
        // Flash-Cosmos data page belongs to exactly one stripe (or is a
        // parity page itself).
        if self.recovery.parity_enabled {
            let mut uncovered: Vec<u64> = Vec::new();
            for (lpn, _ppa, meta) in self.ssd.mapped_snapshot() {
                if meta.randomized
                    || meta.ecc
                    || meta.scheme.cell_mode().bits_per_cell() > 1
                    || self.recovery.lost_pages.contains(&lpn)
                    || self.recovery.stripes.stripe_of_member(lpn).is_some()
                    || self.recovery.stripes.stripe_of_parity(lpn).is_some()
                {
                    continue;
                }
                uncovered.push(lpn);
            }
            if !uncovered.is_empty() {
                uncovered.sort_unstable();
                uncovered.truncate(8);
                out.push(finding(
                    LintCode::Fc103,
                    "parity coverage".to_string(),
                    format!(
                        "FC data pages outside every parity stripe while parity is enabled (first few: {uncovered:?})"
                    ),
                    "pages written before enable_parity() stay uncovered; rewrite them to protect them",
                ));
            }
        }

        // FC104 (warn) — the documented ML protection gap, surfaced
        // honestly: parity is on but multi-level operands sit outside
        // the parity/scrub tiers (see fc_write_ml's protection contract).
        if self.recovery.parity_enabled {
            let ml = self.operands.iter().filter(|r| r.ml).count();
            if ml > 0 {
                out.push(finding(
                    LintCode::Fc104,
                    "protection tiers".to_string(),
                    format!(
                        "{ml} multi-level operand(s) are outside the parity and scrub tiers (read-retry only)"
                    ),
                    "keep data that must survive die loss in SLC/ESP storage, or accept the documented density trade",
                ));
            }
        }
    }

    /// FC105 — no result-cache entry references a stale epoch or a
    /// generation newer than the operand table.
    fn audit_cache_generations(&self, out: &mut Vec<Finding>) {
        let keys: Vec<crate::session::CacheKey> = self.session.cache().keys().cloned().collect();
        for key in &keys {
            if key.0 != self.epoch {
                out.push(finding(
                    LintCode::Fc105,
                    "result cache".to_string(),
                    format!("entry stamped epoch {} survived into epoch {}", key.0, self.epoch),
                    "epoch bumps must clear the cache (the ssd_mut chokepoint)",
                ));
            }
            for &(id, gen) in &key.2 {
                let live = self.operand_generation(id);
                if id >= self.operands.len() {
                    out.push(finding(
                        LintCode::Fc105,
                        "result cache".to_string(),
                        format!("entry references unknown operand v{id}"),
                        "cache keys are built from validated units only",
                    ));
                } else if gen > live {
                    out.push(finding(
                        LintCode::Fc105,
                        "result cache".to_string(),
                        format!(
                            "entry stamped v{id}@{gen}, newer than the table's generation {live}"
                        ),
                        "generations are handed out by bump_generation only; never forge stamps",
                    ));
                }
            }
        }
    }

    /// FC106 — queued maintenance and scrub jobs are stamped with live
    /// state: known operands, reachable generations, existing dies and
    /// allocated pages.
    fn audit_job_stamps(&self, out: &mut Vec<Finding>) {
        let total_dies = self.ssd.config().total_dies();
        let jobs: Vec<RegroupJob> = self.session.jobs().iter().cloned().collect();
        for (ji, job) in jobs.iter().enumerate() {
            let loc = format!("maintenance job {ji}");
            match self.operands.get(job.operand) {
                None => out.push(finding(
                    LintCode::Fc106,
                    loc.clone(),
                    format!("job targets unknown operand v{}", job.operand),
                    "plan jobs from the live operand table",
                )),
                Some(r) => {
                    if r.name != job.name {
                        out.push(finding(
                            LintCode::Fc106,
                            loc.clone(),
                            format!(
                                "job names {:?} but v{} is {:?}",
                                job.name, job.operand, r.name
                            ),
                            "the job's name and operand id must describe the same record",
                        ));
                    }
                    if job.expected_generation > r.generation {
                        out.push(finding(
                            LintCode::Fc106,
                            loc.clone(),
                            format!(
                                "job expects generation {} but the table has only reached {}",
                                job.expected_generation, r.generation
                            ),
                            "expected generations are snapshots of the past, never the future",
                        ));
                    }
                }
            }
            if job.target_die >= total_dies {
                out.push(finding(
                    LintCode::Fc106,
                    loc,
                    format!("job targets die {} of a {total_dies}-die SSD", job.target_die),
                    "validate target dies at planning time",
                ));
            }
        }
        for (ji, job) in self.recovery.scrub_queue.iter().enumerate() {
            if job.lpn >= self.next_lpn {
                out.push(finding(
                    LintCode::Fc106,
                    format!("scrub job {ji}"),
                    format!("scrub queued for never-allocated page {}", job.lpn),
                    "scrub candidates come from the mapped-page scan",
                ));
            }
        }
    }

    /// FC107 — colocation-domain / placement / wear bookkeeping agrees
    /// with itself and with the FTL.
    fn audit_placement(&self, out: &mut Vec<Finding>) {
        let cfg = self.ssd.config();
        let total_planes = cfg.total_planes();
        let total_dies = cfg.total_dies();
        for (id, r) in self.operands.iter().enumerate() {
            let loc = format!("operand v{id} ({:?})", r.name);
            if r.planes.len() != r.lpns.len() || r.dies.len() != r.lpns.len() {
                out.push(finding(
                    LintCode::Fc107,
                    loc.clone(),
                    format!(
                        "placement caches out of step: {} pages, {} planes, {} dies",
                        r.lpns.len(),
                        r.planes.len(),
                        r.dies.len()
                    ),
                    "update lpns, planes and dies together on every placement change",
                ));
                continue;
            }
            for (slot, &lpn) in r.lpns.iter().enumerate() {
                if r.dies[slot] != r.planes[slot].die {
                    out.push(finding(
                        LintCode::Fc107,
                        loc.clone(),
                        format!("slot {slot}: cached die disagrees with the cached plane's die"),
                        "the die cache is derived from the plane cache; update both",
                    ));
                }
                if self.recovery.lost_pages.contains(&lpn) {
                    continue;
                }
                match self.ssd.translate(lpn) {
                    Some(ppa) if ppa.plane == r.planes[slot] => {}
                    Some(ppa) => out.push(finding(
                        LintCode::Fc107,
                        loc.clone(),
                        format!(
                            "slot {slot}: cached on flat plane {} but the FTL maps page {lpn} to flat plane {}",
                            r.planes[slot].flat(cfg),
                            ppa.plane.flat(cfg)
                        ),
                        "refresh the plane cache whenever a page moves (the compile hot path trusts it)",
                    )),
                    None => out.push(finding(
                        LintCode::Fc107,
                        loc.clone(),
                        format!("slot {slot}: page {lpn} is unmapped and not recorded as lost"),
                        "operand pages stay mapped until the operand is rewritten",
                    )),
                }
            }
            if !self.group_place.contains_key(&r.group_index) {
                out.push(finding(
                    LintCode::Fc107,
                    loc,
                    format!("placement group {} has no recorded base plane", r.group_index),
                    "group placement is resolved before the first write lands",
                ));
            }
        }
        let mut groups: Vec<_> = self.groups.iter().collect();
        groups.sort();
        for (name, &gi) in groups {
            if !self.group_place.contains_key(&gi) {
                out.push(finding(
                    LintCode::Fc107,
                    format!("group {name:?}"),
                    format!("group index {gi} registered without a placement"),
                    "group_placement() records the name and the place atomically",
                ));
            }
        }
        let mut places: Vec<_> = self.group_place.iter().collect();
        places.sort_by_key(|&(gi, _)| gi);
        for (gi, place) in places {
            check_place(
                out,
                format!("group {gi} placement"),
                place.base_plane,
                place.pinned_die,
                total_planes,
                total_dies,
            );
        }
        let mut domains: Vec<_> = self.domain_place.iter().collect();
        domains.sort_by_key(|&(name, _)| name);
        for (name, place) in domains {
            check_place(
                out,
                format!("colocation domain {name:?}"),
                place.base_plane,
                place.pinned_die,
                total_planes,
                total_dies,
            );
        }
        let wear = self.plane_wear();
        if wear.len() != total_planes {
            out.push(finding(
                LintCode::Fc107,
                "wear counters".to_string(),
                format!("{} wear counters for {total_planes} planes", wear.len()),
                "wear is tracked per flat plane",
            ));
        }
    }
}

fn check_place(
    out: &mut Vec<Finding>,
    loc: String,
    base_plane: usize,
    pinned_die: Option<usize>,
    total_planes: usize,
    total_dies: usize,
) {
    if base_plane >= total_planes {
        out.push(finding(
            LintCode::Fc107,
            loc.clone(),
            format!("base plane {base_plane} outside the {total_planes}-plane SSD"),
            "placement policies choose among existing planes",
        ));
    }
    if pinned_die.is_some_and(|d| d >= total_dies) {
        out.push(finding(
            LintCode::Fc107,
            loc,
            format!("pinned die {} outside the {total_dies}-die SSD", pinned_die.unwrap_or(0)),
            "die pins are validated before anything is cached",
        ));
    }
}

// ---------------------------------------------------------------------------
// Mutation harness (self-tests of the analyzer; hidden from docs).
// ---------------------------------------------------------------------------

/// A compiled batch held for linting outside the enforcement hooks —
/// the mutation harness corrupts it and asserts the matching code fires.
#[doc(hidden)]
pub struct PlanProbe {
    pub(crate) compiled: CompiledBatch,
}

/// Seeded plan corruptions; each targets exactly one plan-lint code.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMutation {
    /// OR a foreign wordline into an MWS target's PBM → `FC001`.
    ForgeWordline,
    /// Drop a spanning stripe's merge recipe → `FC002`.
    DropMerge,
    /// Skew a chip threshold's k beyond its wordline count → `FC003`.
    SkewThresholdK,
    /// Replace a controller-eval (ML) unit with an execute unit → `FC004`.
    RetagMlAsExecute,
    /// Bump one generation stamp in a unit's cache key → `FC005`.
    SkewUnitGeneration,
    /// Re-queue a leaf on another die → `FC006` (and usually `FC001`).
    MisrouteLeafDie,
    /// Misprice a unit's sense total → `FC007` (the PR 5 bug class).
    MispriceUnit,
}

/// Seeded device corruptions; each targets one device-audit code.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceMutation {
    /// Alias a fresh LPN onto an operand's physical page → `FC101`.
    AliasLpn,
    /// Register a second stripe over an existing member → `FC102`.
    DoubleStripeMember,
    /// Drop one member from a stripe (now uncovered) → `FC103` (warn).
    DropParityMember,
    /// Insert a cache entry stamped with a future generation → `FC105`.
    SkewCacheGeneration,
    /// Queue a maintenance job for a nonexistent operand → `FC106`.
    DeadJob,
    /// Queue a scrub for a never-allocated page → `FC106`.
    UnmappedScrub,
    /// Corrupt one slot of an operand's cached plane → `FC107`.
    SwapOperandPlane,
    /// Move an operand page's mapping into the wrong channel's FTL
    /// shard → `FC108`.
    CrossChannelShardEntry,
}

impl DeviceCore {
    /// Compiles a batch into a [`PlanProbe`] for the mutation harness
    /// (and the plan-lint benchmarks). Uses the recompile path, so the
    /// maintenance affinity tracker is not fed.
    #[doc(hidden)]
    pub fn compile_probe(&self, batch: &QueryBatch) -> Result<PlanProbe, FcError> {
        Ok(PlanProbe { compiled: self.recompile_batch(batch)? })
    }

    /// Runs pass 1 over a probe without enforcement.
    #[doc(hidden)]
    pub fn lint_probe(&self, probe: &PlanProbe) -> Vec<Finding> {
        lint_plan(self, &probe.compiled)
    }

    /// Applies one seeded corruption to a probe. Returns `false` when
    /// the probe holds nothing the mutation applies to (e.g. no merge
    /// to drop) — the harness treats that as a test-setup error.
    #[doc(hidden)]
    pub fn corrupt_probe(&self, probe: &mut PlanProbe, mutation: PlanMutation) -> bool {
        let cfg = self.ssd.config();
        let units = &mut probe.compiled.units;
        match mutation {
            PlanMutation::ForgeWordline => units.iter_mut().any(|u| {
                let UnitWork::Execute { leaves, .. } = &mut u.work else { return false };
                leaves.iter_mut().any(|leaf| {
                    leaf.program.commands.iter_mut().any(|c| match c {
                        Command::Mws { targets, .. } if !targets.is_empty() => {
                            targets[0].pbm |= 1 << 63;
                            true
                        }
                        _ => false,
                    })
                })
            }),
            PlanMutation::DropMerge => units.iter_mut().any(|u| {
                let UnitWork::Execute { merges, .. } = &mut u.work else { return false };
                if merges.is_empty() {
                    return false;
                }
                merges.remove(0);
                true
            }),
            PlanMutation::SkewThresholdK => units.iter_mut().any(|u| {
                let UnitWork::Execute { leaves, .. } = &mut u.work else { return false };
                leaves.iter_mut().any(|leaf| {
                    leaf.program.commands.iter_mut().any(|c| match c {
                        Command::ThresholdMws { target, k } => {
                            *k = target.wl_count() + 5;
                            true
                        }
                        _ => false,
                    })
                })
            }),
            PlanMutation::RetagMlAsExecute => units.iter_mut().any(|u| {
                if !matches!(u.work, UnitWork::Controller { .. }) {
                    return false;
                }
                u.work = UnitWork::Execute {
                    leaves: Vec::new(),
                    slots: Vec::new(),
                    direct: Vec::new(),
                    merges: Vec::new(),
                    senses: 0,
                };
                true
            }),
            PlanMutation::SkewUnitGeneration => units.iter_mut().any(|u| {
                let Some(stamp) = u.key.2.first_mut() else { return false };
                stamp.1 += 1;
                true
            }),
            PlanMutation::MisrouteLeafDie => {
                if cfg.total_dies() < 2 {
                    return false;
                }
                units.iter_mut().any(|u| {
                    let UnitWork::Execute { leaves, .. } = &mut u.work else { return false };
                    let Some(leaf) = leaves.first_mut() else { return false };
                    let flat = leaf.plane.flat(cfg);
                    let moved = (flat + cfg.planes_per_die) % cfg.total_planes();
                    leaf.plane = PlaneId::from_flat(moved, cfg);
                    true
                })
            }
            PlanMutation::MispriceUnit => units.iter_mut().any(|u| {
                let UnitWork::Execute { senses, .. } = &mut u.work else { return false };
                *senses += 3;
                true
            }),
        }
    }

    /// Applies one seeded corruption to the live device state,
    /// deliberately bypassing the epoch/generation chokepoints (that is
    /// the point: the audit must catch what the chokepoints would have
    /// prevented). Returns `false` when the device holds nothing the
    /// mutation applies to.
    #[doc(hidden)]
    pub fn corrupt_for_audit(&mut self, mutation: DeviceMutation) -> bool {
        match mutation {
            DeviceMutation::AliasLpn => {
                let Some(target) =
                    self.operands.iter().find(|r| !r.ml).and_then(|r| r.lpns.first().copied())
                else {
                    return false;
                };
                let fresh = self.next_lpn;
                self.next_lpn += 1;
                // The alias must land in the shard holding the target's
                // mapping (aliases share their base's physical page).
                let shard = match self.ssd.translate(target) {
                    Some(ppa) => ppa.plane.die.channel as usize,
                    None => return false,
                };
                self.ssd
                    .ftl_mut_for_audit(shard)
                    .alias(fresh, target, PageMeta::flash_cosmos(false))
                    .is_ok()
            }
            DeviceMutation::DoubleStripeMember => {
                let Some((_, member, parity)) = self
                    .recovery
                    .stripes
                    .iter()
                    .map(|(id, s)| (id, s.members[0], s.parity_lpn))
                    .min_by_key(|&(id, _, _)| id)
                else {
                    return false;
                };
                let id = self.recovery.next_stripe_id;
                self.recovery.next_stripe_id += 1;
                self.recovery.stripes.insert(id, vec![member], parity);
                true
            }
            DeviceMutation::DropParityMember => {
                let Some((id, members, parity)) = self
                    .recovery
                    .stripes
                    .iter()
                    .filter(|(_, s)| s.members.len() >= 2)
                    .map(|(id, s)| (id, s.members.clone(), s.parity_lpn))
                    .min_by_key(|&(id, _, _)| id)
                else {
                    return false;
                };
                let kept = members[..members.len() - 1].to_vec();
                self.recovery.stripes.insert(id, kept, parity);
                true
            }
            DeviceMutation::SkewCacheGeneration => {
                if self.operands.is_empty() {
                    return false;
                }
                let forged = self.operand_generation(0) + 7;
                let key = (
                    self.epoch,
                    Nnf::Literal(crate::expr::Literal { id: 0, negated: false }),
                    vec![(0usize, forged)],
                );
                self.session.cache().insert(key, BitVec::zeros(8), 1);
                true
            }
            DeviceMutation::DeadJob => {
                let dead = self.operands.len() + 41;
                self.session.jobs().push_back(RegroupJob {
                    name: "audit-dead-job".to_string(),
                    operand: dead,
                    hints: StoreHints::and_group("audit-dead-job"),
                    expected_generation: u64::MAX,
                    pages: 1,
                    target_die: 0,
                    set_key: u64::MAX,
                });
                true
            }
            DeviceMutation::UnmappedScrub => {
                self.recovery.scrub_queue.push_back(ScrubJob { lpn: u64::MAX });
                true
            }
            DeviceMutation::SwapOperandPlane => {
                let cfg = self.ssd.config().clone();
                let Some(r) = self.operands.iter_mut().find(|r| !r.planes.is_empty()) else {
                    return false;
                };
                let flat = r.planes[0].flat(&cfg);
                r.planes[0] = PlaneId::from_flat((flat + 1) % cfg.total_planes(), &cfg);
                true
            }
            DeviceMutation::CrossChannelShardEntry => {
                let shards = self.ssd.ftl_shard_count();
                if shards < 2 {
                    return false;
                }
                let Some(target) =
                    self.operands.iter().find(|r| !r.ml).and_then(|r| r.lpns.first().copied())
                else {
                    return false;
                };
                let Some(home) =
                    (0..shards).find(|&c| self.ssd.ftl_shard(c).translate(target).is_some())
                else {
                    return false;
                };
                let (ppa, meta) = {
                    let shard = self.ssd.ftl_shard(home);
                    match (shard.translate(target), shard.meta(target)) {
                        (Some(ppa), Some(meta)) => (ppa, meta),
                        _ => return false,
                    }
                };
                // Relocate (not alias) the mapping, so the audit sees a
                // pure lockstep violation: the page still resolves via
                // the sequential probe, but lives in the wrong shard.
                let wrong = (home + 1) % shards;
                self.ssd.ftl_mut_for_audit(home).trim(target);
                self.ssd.ftl_mut_for_audit(wrong).adopt_for_audit(target, ppa, meta);
                true
            }
        }
    }
}

impl FlashCosmosDevice {
    /// Cross-checks whole-device metadata — FTL aliasing, parity-stripe
    /// integrity and coverage, result-cache generations, queued-job
    /// stamps, placement/wear bookkeeping — and returns the findings,
    /// sorted by `(code, location)`. Inspects only; never executes or
    /// mutates. Runs under the shared device lock (the automatic
    /// post-drain hook instead audits under the exclusive lock — a
    /// snapshot no concurrent drain can shear).
    pub fn audit(&self) -> Vec<Finding> {
        self.core().audit()
    }

    /// Compiles a batch into a [`PlanProbe`] for the mutation harness
    /// (and the plan-lint benchmarks). Uses the recompile path, so the
    /// maintenance affinity tracker is not fed.
    #[doc(hidden)]
    pub fn compile_probe(&self, batch: &QueryBatch) -> Result<PlanProbe, FcError> {
        self.core().compile_probe(batch)
    }

    /// Runs pass 1 over a probe without enforcement.
    #[doc(hidden)]
    pub fn lint_probe(&self, probe: &PlanProbe) -> Vec<Finding> {
        self.core().lint_probe(probe)
    }

    /// Applies one seeded corruption to a probe. Returns `false` when
    /// the probe holds nothing the mutation applies to (e.g. no merge
    /// to drop) — the harness treats that as a test-setup error.
    #[doc(hidden)]
    pub fn corrupt_probe(&self, probe: &mut PlanProbe, mutation: PlanMutation) -> bool {
        self.core().corrupt_probe(probe, mutation)
    }

    /// Applies one seeded corruption to the live device state,
    /// deliberately bypassing the epoch/generation chokepoints (that is
    /// the point: the audit must catch what the chokepoints would have
    /// prevented). Returns `false` when the device holds nothing the
    /// mutation applies to.
    #[doc(hidden)]
    pub fn corrupt_for_audit(&mut self, mutation: DeviceMutation) -> bool {
        self.core_mut().corrupt_for_audit(mutation)
    }
}
