//! Cross-die execution plans: splitting one query over the planes its
//! operands live on.
//!
//! Die-aware placement (this crate's `device` module) spreads distinct
//! placement groups across dies so independent queries execute in
//! parallel. The price: a single query whose operands span planes can no
//! longer compile to one MWS program — a latch bank is per-plane, so the
//! planner's [`PlanError::PlaneMismatch`] used to be a hard error. This
//! module turns that error into a *planned* cross-die execution:
//!
//! * the normalized expression is partitioned by plane — children of a
//!   top-level AND/OR that share a plane compile **together** (keeping
//!   every intra-plane MWS fusion the planner can find), children that
//!   themselves span planes recurse;
//! * each single-plane piece becomes a [`Leaf`] holding an ordinary
//!   [`MwsProgram`] for that plane's chip;
//! * the controller combines the partial result pages per the
//!   [`MergeTree`] (AND/OR/XOR — the same operator that joined the
//!   pieces in the expression).
//!
//! Leaves on different dies sense concurrently, so a split query's
//! critical path is the busiest die, not the sum — exactly the
//! plane/die-level parallelism §7–§8 of the paper builds its throughput
//! on. The splitter is compiler-agnostic: the Flash-Cosmos planner and
//! the ParaBit baseline compiler both plug in as the leaf compiler, so
//! the baseline stops silently executing cross-die operands on one chip.

use std::collections::{BTreeMap, BTreeSet};

use fc_bits::BitVec;
use fc_ssd::topology::PlaneId;

use crate::expr::{Nnf, OperandId};
use crate::planner::{MwsProgram, PlanError};

/// How the controller combines partial result pages of a split query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// Bitwise AND of the partials.
    And,
    /// Bitwise OR of the partials.
    Or,
    /// Bitwise XOR of the partials (exactly two).
    Xor,
}

/// One single-plane piece of a spanning plan: a compiled program plus the
/// SSD-level plane (die + in-die plane) it runs on.
#[derive(Debug, Clone)]
pub struct Leaf {
    /// The plane whose chip executes the program.
    pub plane: PlaneId,
    /// The compiled single-plane program.
    pub program: MwsProgram,
}

/// A compiled execution plan for one expression stripe: either a single
/// chip program (all operands co-planar) or a controller merge over
/// sub-plans.
#[derive(Debug, Clone)]
pub enum ExecPlan {
    /// Runs entirely on one plane.
    Chip(Leaf),
    /// Controller-side combination of concurrently executable parts.
    Merge {
        /// Combining operator.
        op: MergeOp,
        /// Sub-plans (each a chip program or a nested merge).
        parts: Vec<ExecPlan>,
    },
}

/// Merge recipe over a flattened leaf list: leaves are referenced by
/// their index in the [`ExecPlan::flatten`] output (pre-order).
///
/// The plan lint's `FC002` (see `LINTS.md`) holds every spanning
/// stripe to exactly one recipe consuming exactly its leaves, once
/// each — partial or double consumption merges wrong bits silently.
#[derive(Debug, Clone)]
pub enum MergeTree {
    /// The executed page of leaf `i`.
    Leaf(usize),
    /// Combine the children's pages with the operator.
    Node(MergeOp, Vec<MergeTree>),
}

impl ExecPlan {
    /// Total sensing operations across all leaves — the paper's headline
    /// cost metric, unchanged by splitting.
    pub fn sense_count(&self) -> usize {
        match self {
            ExecPlan::Chip(leaf) => leaf.program.sense_count(),
            ExecPlan::Merge { parts, .. } => parts.iter().map(ExecPlan::sense_count).sum(),
        }
    }

    /// Distinct dies the plan touches.
    pub fn die_count(&self) -> usize {
        let mut dies = BTreeSet::new();
        self.collect_dies(&mut dies);
        dies.len()
    }

    fn collect_dies(&self, dies: &mut BTreeSet<fc_ssd::topology::DieId>) {
        match self {
            ExecPlan::Chip(leaf) => {
                dies.insert(leaf.plane.die);
            }
            ExecPlan::Merge { parts, .. } => {
                for p in parts {
                    p.collect_dies(dies);
                }
            }
        }
    }

    /// Decomposes the plan into its leaves (appended to `leaves` in
    /// pre-order) and the merge recipe referencing them by index.
    pub fn flatten(self, leaves: &mut Vec<Leaf>) -> MergeTree {
        match self {
            ExecPlan::Chip(leaf) => {
                leaves.push(leaf);
                MergeTree::Leaf(leaves.len() - 1)
            }
            ExecPlan::Merge { op, parts } => {
                MergeTree::Node(op, parts.into_iter().map(|p| p.flatten(leaves)).collect())
            }
        }
    }
}

/// Combines executed leaf pages per the merge recipe. Each leaf page is
/// consumed exactly once (`pages[i]` is taken, not cloned).
///
/// # Panics
///
/// Panics if a referenced page is missing or already consumed — the
/// recipe and the page list must come from the same [`ExecPlan`].
pub fn eval_merge(tree: &MergeTree, pages: &mut [Option<BitVec>]) -> BitVec {
    match tree {
        MergeTree::Leaf(i) => pages[*i].take().expect("each leaf page is consumed exactly once"),
        MergeTree::Node(op, parts) => {
            let mut acc = eval_merge(&parts[0], pages);
            for part in &parts[1..] {
                let page = eval_merge(part, pages);
                match op {
                    MergeOp::And => acc.and_assign(&page),
                    MergeOp::Or => acc.or_assign(&page),
                    MergeOp::Xor => acc.xor_assign(&page),
                }
            }
            acc
        }
    }
}

/// Compiles `nnf` into an [`ExecPlan`], splitting across planes where the
/// operand placement requires it. `plane_of` resolves every operand to
/// the SSD-level plane its stripe page lives on (`None` for unplaced
/// operands); `leaf_compile` lowers a single-plane sub-expression to a
/// chip program (the Flash-Cosmos planner or the ParaBit compiler).
///
/// # Errors
///
/// [`PlanError::NoPlacement`] for operands `plane_of` cannot resolve, and
/// whatever `leaf_compile` reports for a piece it cannot lower. XOR below
/// the top level cannot span planes (mirroring the single-plane planner,
/// which rejects nested XOR outright).
pub fn compile_spanning<P, F>(
    nnf: &Nnf,
    plane_of: &P,
    leaf_compile: &mut F,
) -> Result<ExecPlan, PlanError>
where
    P: Fn(OperandId) -> Option<PlaneId>,
    F: FnMut(&Nnf) -> Result<MwsProgram, PlanError>,
{
    build(nnf, plane_of, leaf_compile, true)
}

/// Collects the distinct planes an expression's operands live on into
/// `span` (a small vector with linear dedup — expressions touch a
/// handful of planes, and this path runs once per plan node, so it
/// stays allocation-light on the hot single-plane case).
fn collect_span<P>(nnf: &Nnf, plane_of: &P, span: &mut Vec<PlaneId>) -> Result<(), PlanError>
where
    P: Fn(OperandId) -> Option<PlaneId>,
{
    match nnf {
        Nnf::Literal(l) => {
            let p = plane_of(l.id).ok_or(PlanError::NoPlacement(l.id))?;
            if !span.contains(&p) {
                span.push(p);
            }
        }
        Nnf::And(cs) | Nnf::Or(cs) | Nnf::Threshold { children: cs, .. } => {
            for c in cs {
                collect_span(c, plane_of, span)?;
            }
        }
        Nnf::Xor(a, b) => {
            collect_span(a, plane_of, span)?;
            collect_span(b, plane_of, span)?;
        }
    }
    Ok(())
}

fn build<P, F>(
    nnf: &Nnf,
    plane_of: &P,
    leaf_compile: &mut F,
    top: bool,
) -> Result<ExecPlan, PlanError>
where
    P: Fn(OperandId) -> Option<PlaneId>,
    F: FnMut(&Nnf) -> Result<MwsProgram, PlanError>,
{
    let mut span = Vec::with_capacity(2);
    collect_span(nnf, plane_of, &mut span)?;
    if span.len() <= 1 {
        let plane = span
            .first()
            .copied()
            .unwrap_or(PlaneId { die: fc_ssd::topology::DieId::new(0, 0), plane: 0 });
        return Ok(ExecPlan::Chip(Leaf { plane, program: leaf_compile(nnf)? }));
    }
    match nnf {
        Nnf::Literal(_) => unreachable!("a literal lives on exactly one plane"),
        Nnf::And(cs) => build_nary(cs, MergeOp::And, plane_of, leaf_compile),
        Nnf::Or(cs) => build_nary(cs, MergeOp::Or, plane_of, leaf_compile),
        Nnf::Xor(a, b) => {
            if !top {
                return Err(PlanError::Unplannable(
                    "XOR below the top level cannot span planes".to_string(),
                ));
            }
            // The chip XOR logic combines two latches once, so only
            // literal sides are expressible — same rule as the planner.
            if !matches!((a.as_ref(), b.as_ref()), (Nnf::Literal(_), Nnf::Literal(_))) {
                return Err(PlanError::UnsupportedXor);
            }
            let parts = vec![
                build(a, plane_of, leaf_compile, false)?,
                build(b, plane_of, leaf_compile, false)?,
            ];
            Ok(ExecPlan::Merge { op: MergeOp::Xor, parts })
        }
        Nnf::Threshold { .. } => {
            // A vote spanning planes cannot be combined with the Boolean
            // merge ops (it would need partial *counts*), so fall back to
            // the exact OR-of-combinations expansion and split that —
            // more senses, never a silently wrong page.
            let expanded = crate::planner::expand_thresholds(nnf)?;
            build(&expanded, plane_of, leaf_compile, top)
        }
    }
}

/// Splits an n-ary AND/OR: children sharing a plane compile together (so
/// intra-plane MWS fusion survives), spanning children recurse.
fn build_nary<P, F>(
    children: &[Nnf],
    op: MergeOp,
    plane_of: &P,
    leaf_compile: &mut F,
) -> Result<ExecPlan, PlanError>
where
    P: Fn(OperandId) -> Option<PlaneId>,
    F: FnMut(&Nnf) -> Result<MwsProgram, PlanError>,
{
    let mut buckets: BTreeMap<PlaneId, Vec<Nnf>> = BTreeMap::new();
    let mut parts = Vec::new();
    let mut span = Vec::with_capacity(2);
    for child in children {
        span.clear();
        collect_span(child, plane_of, &mut span)?;
        if let [plane] = span[..] {
            buckets.entry(plane).or_default().push(child.clone());
        } else {
            parts.push(build(child, plane_of, leaf_compile, false)?);
        }
    }
    for (plane, mut bucket) in buckets {
        let sub = if bucket.len() == 1 {
            bucket.pop().expect("non-empty bucket")
        } else {
            match op {
                MergeOp::And => Nnf::And(bucket),
                MergeOp::Or => Nnf::Or(bucket),
                MergeOp::Xor => unreachable!("XOR is not n-ary"),
            }
        };
        parts.push(ExecPlan::Chip(Leaf { plane, program: leaf_compile(&sub)? }));
    }
    Ok(ExecPlan::Merge { op, parts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::planner::{self, PlacementMap, PlannerCaps};
    use fc_nand::geometry::WlAddr;
    use fc_ssd::topology::DieId;

    fn caps() -> PlannerCaps {
        PlannerCaps { max_inter_blocks: 4, wls_per_block: 8 }
    }

    /// Places operand `i` on (die i/2, in-die plane 0), block i, wl 0.
    fn layout(n: usize) -> (PlacementMap, std::collections::HashMap<OperandId, PlaneId>) {
        let mut map = PlacementMap::new();
        let mut planes = std::collections::HashMap::new();
        for i in 0..n {
            map.insert(i, WlAddr::new(0, i as u32, 0), false);
            planes.insert(i, PlaneId { die: DieId::new(0, (i / 2) as u32), plane: 0 });
        }
        (map, planes)
    }

    #[test]
    fn co_planar_expression_stays_one_program() {
        let (map, _) = layout(4);
        let planes: std::collections::HashMap<OperandId, PlaneId> =
            (0..4).map(|i| (i, PlaneId { die: DieId::new(0, 0), plane: 0 })).collect();
        let nnf = Expr::or_vars(0..4).to_nnf();
        let plan = compile_spanning(&nnf, &|id| planes.get(&id).copied(), &mut |sub| {
            planner::compile(sub, &map, caps())
        })
        .unwrap();
        assert!(matches!(plan, ExecPlan::Chip(_)));
        assert_eq!(plan.sense_count(), 1, "Eq. 1 fusion survives");
        assert_eq!(plan.die_count(), 1);
    }

    #[test]
    fn spanning_and_splits_per_plane_and_merges() {
        // 4 operands over 2 dies: one leaf per die, AND-merged.
        let (map, planes) = layout(4);
        let nnf = Expr::and_vars(0..4).to_nnf();
        let plan = compile_spanning(&nnf, &|id| planes.get(&id).copied(), &mut |sub| {
            planner::compile(sub, &map, caps())
        })
        .unwrap();
        assert_eq!(plan.die_count(), 2);
        let ExecPlan::Merge { op: MergeOp::And, ref parts } = plan else {
            panic!("expected an AND merge, got {plan:?}");
        };
        assert_eq!(parts.len(), 2);
        let mut leaves = Vec::new();
        let tree = plan.flatten(&mut leaves);
        assert_eq!(leaves.len(), 2);
        assert!(matches!(tree, MergeTree::Node(MergeOp::And, _)));
    }

    #[test]
    fn eval_merge_combines_partials() {
        let a = BitVec::from_fn(8, |i| i % 2 == 0);
        let b = BitVec::from_fn(8, |i| i < 4);
        let tree = MergeTree::Node(MergeOp::And, vec![MergeTree::Leaf(0), MergeTree::Leaf(1)]);
        let mut pages = vec![Some(a.clone()), Some(b.clone())];
        assert_eq!(eval_merge(&tree, &mut pages), a.and(&b));
        let tree = MergeTree::Node(MergeOp::Xor, vec![MergeTree::Leaf(0), MergeTree::Leaf(1)]);
        let mut pages = vec![Some(a.clone()), Some(b.clone())];
        assert_eq!(eval_merge(&tree, &mut pages), a.xor(&b));
    }

    #[test]
    fn nested_xor_across_planes_is_rejected() {
        let (map, planes) = layout(4);
        let nnf = Expr::or(vec![
            Expr::xor(Expr::var(0), Expr::var(2)), // spans dies 0 and 1
            Expr::var(3),
        ])
        .to_nnf();
        let err = compile_spanning(&nnf, &|id| planes.get(&id).copied(), &mut |sub| {
            planner::compile(sub, &map, caps())
        })
        .unwrap_err();
        assert!(matches!(err, PlanError::Unplannable(_)));
    }

    #[test]
    fn spanning_threshold_expands_and_merges_exactly() {
        // TH2 over operands on two dies: no Boolean merge op carries
        // partial counts, so the splitter must expand the vote first.
        let (map, planes) = layout(4);
        let nnf = Expr::threshold_vars(2, 0..4).to_nnf();
        let plan = compile_spanning(&nnf, &|id| planes.get(&id).copied(), &mut |sub| {
            planner::compile(sub, &map, caps())
        })
        .unwrap();
        assert_eq!(plan.die_count(), 2);
        assert!(matches!(plan, ExecPlan::Merge { op: MergeOp::Or, .. }));
    }

    #[test]
    fn missing_placement_is_reported() {
        let (map, mut planes) = layout(3);
        planes.remove(&1);
        let nnf = Expr::and_vars(0..3).to_nnf();
        let err = compile_spanning(&nnf, &|id| planes.get(&id).copied(), &mut |sub| {
            planner::compile(sub, &map, caps())
        })
        .unwrap_err();
        assert_eq!(err, PlanError::NoPlacement(1));
    }
}
