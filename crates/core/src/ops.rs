//! Derived bulk operations (§10 "Extensions to Other Applications").
//!
//! The paper notes that Flash-Cosmos's primitive set is *logically
//! complete*, so frameworks in the style of SIMDRAM / DualityCache can
//! synthesize arbitrary operations from it, and leaves such a framework
//! to future work. This module is a first cut of that layer: common
//! multi-vector operations expressed as [`Expr`] trees that the planner
//! then lowers onto MWS commands.
//!
//! Everything here is *position-wise* (bit-parallel across the vector),
//! which is exactly the class of operations processing-using-memory
//! substrates accelerate.

use crate::expr::{Expr, OperandId};

/// Bitwise 2-to-1 multiplexer: `sel ? a : b`, position-wise
/// (`(sel & a) | (!sel & b)`).
pub fn mux(sel: OperandId, a: OperandId, b: OperandId) -> Expr {
    Expr::or(vec![
        Expr::and(vec![Expr::var(sel), Expr::var(a)]),
        Expr::and(vec![Expr::not(Expr::var(sel)), Expr::var(b)]),
    ])
}

/// Position-wise majority of three vectors:
/// `(a&b) | (a&c) | (b&c)` — the carry function of a full adder.
pub fn majority3(a: OperandId, b: OperandId, c: OperandId) -> Expr {
    Expr::or(vec![Expr::and_vars([a, b]), Expr::and_vars([a, c]), Expr::and_vars([b, c])])
}

/// Position-wise parity (sum bit of a full adder): `a ^ b ^ c`.
///
/// The chip's XOR logic is binary, so this compiles as two XOR programs
/// when executed (the planner handles literal-literal XOR; ternary
/// parity is evaluated as `(a ^ b) ^ c` by [`crate::expr::Expr::eval`]
/// and requires two `fc_read` passes in-flash — see the
/// `full_adder_in_flash` test for the staged pattern).
pub fn parity3(a: OperandId, b: OperandId, c: OperandId) -> Expr {
    Expr::xor(Expr::xor(Expr::var(a), Expr::var(b)), Expr::var(c))
}

/// Bit-vector difference: elements in `a` but not in `b` (`a & !b`) —
/// the set-minus of the paper's set-centric graph formulation.
pub fn set_difference(a: OperandId, b: OperandId) -> Expr {
    Expr::and(vec![Expr::var(a), Expr::not(Expr::var(b))])
}

/// Symmetric difference (`a ^ b`) — set elements in exactly one side.
pub fn symmetric_difference(a: OperandId, b: OperandId) -> Expr {
    Expr::xor(Expr::var(a), Expr::var(b))
}

/// Position-wise equality (`a XNOR b`): 1 where the vectors agree — the
/// building block of the in-flash pattern matching the paper cites for
/// chip testing (§6.1).
pub fn equality(a: OperandId, b: OperandId) -> Expr {
    Expr::xnor(Expr::var(a), Expr::var(b))
}

/// Containment mask: positions where `a ⊆ b` fails, i.e. `a & !b`
/// non-zero means `a` is not contained in `b`. Evaluating
/// [`set_difference`] and bit-counting gives the subset test the
/// set-centric SISA formulation uses.
pub fn containment_violations(a: OperandId, b: OperandId) -> Expr {
    set_difference(a, b)
}

/// At-least-`k`-of-`n` threshold over small `n` (union of all size-`k`
/// AND combinations). Practical for the small fan-ins used by
/// hyper-dimensional-computing style voting; the combination count grows
/// as `C(n, k)`.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `ids.len()`, or if `C(n, k)` would
/// exceed 10,000 terms.
pub fn at_least_k_of(ids: &[OperandId], k: usize) -> Expr {
    assert!(k >= 1 && k <= ids.len(), "threshold k={k} out of range for n={}", ids.len());
    let combos = combinations(ids, k);
    assert!(combos.len() <= 10_000, "C({}, {k}) too large to synthesize", ids.len());
    Expr::or(combos.into_iter().map(Expr::and_vars).collect())
}

fn combinations(ids: &[OperandId], k: usize) -> Vec<Vec<OperandId>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    if ids.len() < k {
        return Vec::new();
    }
    let mut out = Vec::new();
    for rest in combinations(&ids[1..], k - 1) {
        let mut c = vec![ids[0]];
        c.extend(rest);
        out.push(c);
    }
    out.extend(combinations(&ids[1..], k));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_bits::BitVec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize, bits: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| BitVec::random(bits, &mut rng)).collect()
    }

    #[test]
    fn mux_selects_per_position() {
        let t = table(3, 256, 1);
        let lookup = |i: usize| t[i].clone();
        let out = mux(0, 1, 2).eval(&lookup);
        for i in 0..256 {
            let expect = if t[0].get(i) { t[1].get(i) } else { t[2].get(i) };
            assert_eq!(out.get(i), expect);
        }
    }

    #[test]
    fn majority_and_parity_form_a_full_adder() {
        let t = table(3, 512, 2);
        let lookup = |i: usize| t[i].clone();
        let carry = majority3(0, 1, 2).eval(&lookup);
        let sum = parity3(0, 1, 2).eval(&lookup);
        for i in 0..512 {
            let total = u8::from(t[0].get(i)) + u8::from(t[1].get(i)) + u8::from(t[2].get(i));
            assert_eq!(sum.get(i), total % 2 == 1, "sum bit at {i}");
            assert_eq!(carry.get(i), total >= 2, "carry bit at {i}");
        }
    }

    #[test]
    fn set_operations() {
        let t = table(2, 300, 3);
        let lookup = |i: usize| t[i].clone();
        let diff = set_difference(0, 1).eval(&lookup);
        let sym = symmetric_difference(0, 1).eval(&lookup);
        let eq = equality(0, 1).eval(&lookup);
        for i in 0..300 {
            assert_eq!(diff.get(i), t[0].get(i) && !t[1].get(i));
            assert_eq!(sym.get(i), t[0].get(i) ^ t[1].get(i));
            assert_eq!(eq.get(i), t[0].get(i) == t[1].get(i));
        }
        // Subset check: a ⊆ a ∪ b always.
        let union = t[0].or(&t[1]);
        let lookup2 = move |i: usize| if i == 0 { t[0].clone() } else { union.clone() };
        assert!(containment_violations(0, 1).eval(&lookup2).is_all_zeros());
    }

    #[test]
    fn threshold_votes() {
        let t = table(5, 400, 4);
        let lookup = |i: usize| t[i].clone();
        for k in 1..=5 {
            let out = at_least_k_of(&[0, 1, 2, 3, 4], k).eval(&lookup);
            for i in 0..400 {
                let votes = (0..5).filter(|&v| t[v].get(i)).count();
                assert_eq!(out.get(i), votes >= k, "k={k} position {i}");
            }
        }
    }

    #[test]
    fn threshold_1_is_or_and_n_is_and() {
        let t = table(3, 128, 5);
        let lookup = |i: usize| t[i].clone();
        assert_eq!(
            at_least_k_of(&[0, 1, 2], 1).eval(&lookup),
            Expr::or_vars([0, 1, 2]).eval(&lookup)
        );
        assert_eq!(
            at_least_k_of(&[0, 1, 2], 3).eval(&lookup),
            Expr::and_vars([0, 1, 2]).eval(&lookup)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_threshold_panics() {
        at_least_k_of(&[0, 1], 0);
    }

    /// The staged in-flash full adder: carry in one fc_read (pure
    /// AND/OR), sum via two XOR passes — the §10 synthesis pattern on the
    /// actual device.
    #[test]
    fn full_adder_in_flash() {
        use crate::device::{FlashCosmosDevice, StoreHints};
        use fc_ssd::SsdConfig;
        let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
        let t = table(3, 256, 6);
        for (i, v) in t.iter().enumerate() {
            dev.fc_write(&format!("in{i}"), v, StoreHints::and_group(&format!("g{i}"))).unwrap();
        }
        // Carry = majority — a single AND/OR expression.
        let (carry, _) = dev.fc_read(&majority3(0, 1, 2)).unwrap();
        // Sum stage 1: t0 ^ t1 (in-flash XOR), stored back as operand 3.
        let (ab, _) = dev.fc_read(&Expr::xor(Expr::var(0), Expr::var(1))).unwrap();
        dev.fc_write("ab", &ab, StoreHints::and_group("g-ab")).unwrap();
        let ab_id = dev.operand("ab").unwrap().id;
        // Sum stage 2: (t0 ^ t1) ^ t2.
        let (sum, _) = dev.fc_read(&Expr::xor(Expr::var(ab_id), Expr::var(2))).unwrap();
        for i in 0..256 {
            let total = u8::from(t[0].get(i)) + u8::from(t[1].get(i)) + u8::from(t[2].get(i));
            assert_eq!(sum.get(i), total % 2 == 1);
            assert_eq!(carry.get(i), total >= 2);
        }
    }
}
