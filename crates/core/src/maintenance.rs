//! Policy-driven device maintenance: hot-operand regrouping, wear-aware
//! placement and cost-aware cache admission on idle-die time.
//!
//! Flash-Cosmos only gets its single-sense wins when the operands an
//! expression fuses are co-located in one block (intra-block MWS), so
//! *where data sits* is the difference between 1 sense and N. The device
//! already observes everything needed to fix a bad layout on its own:
//!
//! * the batch compiler knows which operand sets are **fused together**
//!   and how many senses each unit costs (scattered sets cost more than
//!   one sense per stripe);
//! * the result cache knows which units are **re-queried** (hit counts);
//! * [`drain`](crate::device::FlashCosmosDevice::drain) knows which dies
//!   sit **idle** while the busiest die bounds the critical path.
//!
//! This module turns those observations into background work, split into
//! three pluggable stages:
//!
//! 1. **Affinity tracking** — [`AffinityTracker`] (fed by every batch
//!    compile) counts, per co-fused operand set, how often the set was
//!    queried, how often the cache answered it, and what it last cost in
//!    senses.
//! 2. **Regroup planning** — a [`RegroupPolicy`] (default
//!    [`HotSetRegrouper`]) selects hot, scattered sets; the planner turns
//!    each into [`RegroupJob`]s that
//!    [`migrate_operand`](crate::device::FlashCosmosDevice::migrate_operand)
//!    the set into a fresh shared placement group on a **wear-aware**
//!    target die (least summed per-block P/E cycles, block pressure as
//!    the tie-break — see
//!    [`plane_wear`](crate::device::FlashCosmosDevice::plane_wear)).
//! 3. **Background execution** — queued jobs ride the next
//!    [`drain`](crate::device::FlashCosmosDevice::drain): each job's
//!    modeled chip time fills the per-die idle slack
//!    ([`DieQueues::try_fill`](fc_ssd::pipeline::DieQueues::try_fill))
//!    and is executed only when every touched die stays within the
//!    configured critical-path budget ([`MaintenanceConfig`]); jobs that
//!    do not fit stay queued for the next pass.
//!
//! A job whose source operand changed between planning and execution
//! (its placement **generation** no longer matches) is *retired*, never
//! applied — the observations it was planned from are stale. Retired
//! jobs land in a bounded log ([`RetiredJob`]); once the set is
//! re-observed hot ([`MaintenanceConfig::min_cofuse`] fresh co-queries —
//! planning consumed the earlier heat), a later pass sees its operands
//! still scattered and finishes the gather.
//!
//! The same policy split covers the two placement decisions that used to
//! be hard-coded in the device: fresh placement groups ask a
//! [`PlacementPolicy`] (default [`SpreadPlacement`], the die-rotating
//! least-loaded spread; [`WearAwarePlacement`] prefers low-wear planes),
//! and the result cache asks a [`CacheAdmission`] policy which entry to
//! evict (default [`CostAwareAdmission`], hit-frequency × senses-saved;
//! [`FifoAdmission`] restores the oldest-first bound).
//!
//! ```
//! use flash_cosmos::device::{FlashCosmosDevice, StoreHints};
//! use flash_cosmos::batch::QueryBatch;
//! use fc_ssd::SsdConfig;
//! use fc_bits::BitVec;
//!
//! let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
//! // Scattered layout: each operand in its own group (own block/die).
//! for i in 0..4 {
//!     let v = BitVec::ones(64);
//!     dev.fc_write(&format!("op{i}"), &v, StoreHints::and_group(&format!("s{i}"))).unwrap();
//! }
//! let ids: Vec<usize> = (0..4).collect();
//! let mut batch = QueryBatch::new();
//! batch.push(flash_cosmos::Expr::and_vars(ids.iter().copied()));
//! // Query the set twice: the affinity tracker marks it hot...
//! let cold = dev.submit(&batch).unwrap();
//! dev.submit(&batch).unwrap();
//! // ...maintenance gathers it into one block...
//! let stats = dev.run_maintenance().unwrap();
//! assert_eq!(stats.jobs_executed, 4, "one migration per operand");
//! // ...and the warm query drops to a single sense.
//! let warm = dev.submit(&batch).unwrap();
//! assert_eq!(warm.results, cold.results);
//! assert!(warm.stats.senses < cold.stats.senses);
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::device::StoreHints;
use crate::expr::OperandId;

/// Read-only placement facts a [`PlacementPolicy`] decides from,
/// snapshotted per decision (placements are rare; queries are not).
#[derive(Debug, Clone)]
pub struct PlacementQuery {
    /// Blocks already allocated per flat plane (the FTL's block
    /// pressure).
    pub pressures: Vec<u32>,
    /// Summed per-block P/E cycles per flat plane (the chips' erase
    /// counters). Scanning every block's counter is the expensive part
    /// of the snapshot, so it is only populated for policies whose
    /// [`PlacementPolicy::needs_wear`] returns `true` (all zeros
    /// otherwise).
    pub wear: Vec<u64>,
    /// Planes per die.
    pub planes_per_die: usize,
    /// Dies in the SSD.
    pub dies: usize,
    /// Dies sharing one channel bus (flat die layout is channel-major:
    /// dies `c*dies_per_channel..(c+1)*dies_per_channel` sit on channel
    /// `c`). `0` or `1` degrades to every die on its own channel.
    pub dies_per_channel: usize,
}

impl PlacementQuery {
    /// Total flat planes.
    pub fn planes(&self) -> usize {
        self.dies * self.planes_per_die
    }

    /// The die a flat plane belongs to.
    pub fn die_of(&self, plane: usize) -> usize {
        plane / self.planes_per_die
    }

    /// Summed wear of one die's planes.
    pub fn die_wear(&self, die: usize) -> u64 {
        self.wear[die * self.planes_per_die..(die + 1) * self.planes_per_die].iter().sum()
    }

    /// Summed block pressure of one die's planes.
    pub fn die_pressure(&self, die: usize) -> u64 {
        self.pressures[die * self.planes_per_die..(die + 1) * self.planes_per_die]
            .iter()
            .map(|&p| p as u64)
            .sum()
    }

    /// Channels in the SSD (≥ 1).
    pub fn channels(&self) -> usize {
        self.dies.div_ceil(self.dies_per_channel.max(1)).max(1)
    }

    /// The channel a die's bus belongs to.
    pub fn channel_of(&self, die: usize) -> usize {
        die / self.dies_per_channel.max(1)
    }

    /// The channel-first die visiting order: step `j` visits one die of
    /// every channel before revisiting a channel, so consecutive
    /// placements spread over channel buses before doubling up within
    /// one. With one die per channel this is the identity (the historic
    /// die-rotating order).
    pub(crate) fn channel_first_die(&self, step: usize) -> usize {
        let dpc = self.dies_per_channel.max(1).min(self.dies.max(1));
        let channels = self.dies.div_ceil(dpc);
        // Walk the channel-major grid column by column, skipping the
        // padding cells of a ragged last channel.
        let mut j = step % self.dies.max(1);
        for k in 0..channels * dpc {
            let d = (k % channels) * dpc + k / channels;
            if d < self.dies {
                if j == 0 {
                    return d;
                }
                j -= 1;
            }
        }
        unreachable!("the grid holds every die exactly once");
    }

    /// Inverse of [`PlacementQuery::channel_first_die`]: the step at
    /// which the order visits `die`.
    pub(crate) fn channel_first_step(&self, die: usize) -> usize {
        let dpc = self.dies_per_channel.max(1).min(self.dies.max(1));
        let channels = self.dies.div_ceil(dpc);
        let mut step = 0;
        for k in 0..channels * dpc {
            let d = (k % channels) * dpc + k / channels;
            if d < self.dies {
                if d == die {
                    return step;
                }
                step += 1;
            }
        }
        unreachable!("the grid holds every die exactly once");
    }
}

/// Picks the base plane for a fresh placement group (or colocation
/// domain). The policy owns whatever cursor state it needs; the device
/// consults it through
/// [`set_placement_policy`](crate::device::FlashCosmosDevice::set_placement_policy).
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// Chooses a flat plane. `pinned_die`, when given, restricts the
    /// choice to that die's planes (the caller validated the index).
    fn choose_plane(&mut self, query: &PlacementQuery, pinned_die: Option<usize>) -> usize;

    /// Whether this policy reads [`PlacementQuery::wear`]. Defaults to
    /// `false`, sparing every fresh-group placement the per-block
    /// erase-counter scan; a policy that consults wear **must** override
    /// this or it will see zeros.
    fn needs_wear(&self) -> bool {
        false
    }
}

/// The default policy: least-loaded plane by block pressure, visiting
/// dies round-robin from a rotating cursor so pressure ties spread across
/// dies rather than filling die 0 (the PR 3 behavior, extracted).
#[derive(Debug, Clone, Default)]
pub struct SpreadPlacement {
    die_cursor: usize,
}

impl SpreadPlacement {
    /// A fresh spread policy (cursor at die 0).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The shared channel-first least-key scan both provided policies use:
/// the minimal-`key` plane wins, ties visiting one die of every
/// *channel* before a second die within any channel, and one plane of
/// every die before revisiting a die (starting at `die_cursor`, a step
/// in the channel-first order, which advances past the chosen die); a
/// pin restricts the scan to one die's planes. With one die per channel
/// the order degrades to the historic die rotation.
fn choose_rotating<K: Ord + Copy>(
    q: &PlacementQuery,
    pinned_die: Option<usize>,
    die_cursor: &mut usize,
    key: impl Fn(usize) -> K,
) -> usize {
    let ppd = q.planes_per_die;
    if let Some(d) = pinned_die {
        return (0..ppd)
            .map(|p| d * ppd + p)
            .min_by_key(|&plane| (key(plane), plane))
            .expect("a die has at least one plane");
    }
    let mut best: Option<(K, usize, usize)> = None;
    for k in 0..q.planes() {
        // Channel-fastest enumeration: spread ties over channel buses
        // first, then over dies within a channel, then over planes.
        let d = q.channel_first_die(*die_cursor + k % q.dies);
        let pid = k / q.dies;
        let plane = d * ppd + pid;
        let plane_key = key(plane);
        if best.is_none_or(|(bk, bi, _)| (plane_key, k) < (bk, bi)) {
            best = Some((plane_key, k, plane));
        }
    }
    let (_, _, plane) = best.expect("an SSD has at least one plane");
    *die_cursor = (q.channel_first_step(plane / ppd) + 1) % q.dies;
    plane
}

impl PlacementPolicy for SpreadPlacement {
    fn choose_plane(&mut self, q: &PlacementQuery, pinned_die: Option<usize>) -> usize {
        choose_rotating(q, pinned_die, &mut self.die_cursor, |plane| q.pressures[plane])
    }
}

/// Wear-levelling placement: prefers the plane with the least summed
/// per-block P/E cycles, breaking wear ties by block pressure and then by
/// the same die-rotating enumeration as [`SpreadPlacement`] — worn planes
/// stop receiving fresh groups while even wear degrades to the default
/// spread.
#[derive(Debug, Clone, Default)]
pub struct WearAwarePlacement {
    die_cursor: usize,
}

impl WearAwarePlacement {
    /// A fresh wear-aware policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PlacementPolicy for WearAwarePlacement {
    fn needs_wear(&self) -> bool {
        true
    }

    fn choose_plane(&mut self, q: &PlacementQuery, pinned_die: Option<usize>) -> usize {
        choose_rotating(q, pinned_die, &mut self.die_cursor, |plane| {
            (q.wear[plane], q.pressures[plane])
        })
    }
}

/// Observable facts about one result-cache entry, handed to a
/// [`CacheAdmission`] policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntryInfo {
    /// Lookups this entry has served.
    pub hits: u64,
    /// Senses a cold execution of the unit costs (what each future hit
    /// saves).
    pub senses: u64,
    /// Insertion sequence number (monotonic; smaller = older).
    pub seq: u64,
    /// Size of the memoized result vector, bits.
    pub bits: usize,
}

/// Scores result-cache entries for admission and eviction. When the
/// cache is full, the entry with the lowest `(score, seq)` is the
/// eviction victim; a fresh insert only displaces it when
/// [`CacheAdmission::admit`] agrees. Select a policy with
/// [`set_cache_admission`](crate::device::FlashCosmosDevice::set_cache_admission).
pub trait CacheAdmission: std::fmt::Debug + Send + Sync {
    /// The entry's retention value; higher survives longer.
    fn score(&self, entry: &CacheEntryInfo) -> f64;

    /// Whether `fresh` may displace `victim` (the lowest-scored resident
    /// entry). The default admits unless the fresh entry scores strictly
    /// below the victim — cost-aware *admission*, not just eviction.
    fn admit(&self, fresh: &CacheEntryInfo, victim: &CacheEntryInfo) -> bool {
        self.score(fresh) >= self.score(victim)
    }
}

/// Oldest-first eviction, always admitting — the PR 4 FIFO bound, kept
/// selectable for comparison and for workloads without re-query skew.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoAdmission;

impl CacheAdmission for FifoAdmission {
    fn score(&self, entry: &CacheEntryInfo) -> f64 {
        entry.seq as f64
    }

    fn admit(&self, _fresh: &CacheEntryInfo, _victim: &CacheEntryInfo) -> bool {
        true
    }
}

/// Cost-aware retention (the default): an entry is worth what its future
/// hits save, estimated as hit frequency × senses per cold execution.
/// Entries that were never re-queried decay to their sense cost alone, so
/// a full cache sheds cold one-off results before proven-hot ones — and
/// refuses to evict a proven-hot entry for a one-off insert. Hit counts
/// age: the cache halves every resident's count once per decay window
/// of insert attempts (two turnovers' worth), so the score measures
/// *recent* frequency — after a working-set shift the stale-hot entries
/// decay to evictable while genuinely hot ones re-earn their hits
/// between halvings.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostAwareAdmission;

impl CacheAdmission for CostAwareAdmission {
    fn score(&self, entry: &CacheEntryInfo) -> f64 {
        (entry.hits + 1) as f64 * entry.senses.max(1) as f64
    }
}

/// Aggregate affinity facts about one co-fused operand set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AffinityEntry {
    /// Times the set was compiled as one plan unit, weighted by the
    /// queries each unit served.
    pub fused: u64,
    /// Times the set's unit was answered by the result cache.
    pub cache_hits: u64,
    /// Most recently modeled senses for the set's unit (scatter signal:
    /// a co-located set costs `pages` senses, a scattered one more).
    pub senses: u64,
    /// Stripe pages of the set's operands.
    pub pages: u64,
}

/// Records which operand sets the batch compiler fuses and what they
/// cost — the observation stream the regrouping planner consumes.
/// Bounded: beyond `capacity` distinct sets, the coldest set is dropped.
#[derive(Debug)]
pub struct AffinityTracker {
    entries: HashMap<Vec<OperandId>, AffinityEntry>,
    capacity: usize,
}

/// Default bound on distinct tracked operand sets.
const DEFAULT_AFFINITY_CAPACITY: usize = 1024;

impl Default for AffinityTracker {
    fn default() -> Self {
        Self { entries: HashMap::new(), capacity: DEFAULT_AFFINITY_CAPACITY }
    }
}

impl AffinityTracker {
    /// Records one compiled unit over `ids` (sorted, deduplicated; sets
    /// of fewer than two operands carry no regrouping signal and are
    /// ignored). `weight` is the number of queries the unit served.
    pub(crate) fn record(
        &mut self,
        ids: &[OperandId],
        senses: u64,
        pages: u64,
        weight: u64,
        cached: bool,
    ) {
        if ids.len() < 2 {
            return;
        }
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted and deduped");
        // Hot path: an already-tracked set updates in place, allocation
        // free (this runs once per compiled unit on every submit).
        if let Some(entry) = self.entries.get_mut(ids) {
            entry.fused += weight;
            entry.cache_hits += if cached { weight } else { 0 };
            entry.senses = senses;
            entry.pages = pages;
            return;
        }
        if self.entries.len() >= self.capacity {
            // Bound the tracker: drop the coldest set (never the one
            // being recorded — it is demonstrably live).
            if let Some(coldest) =
                self.entries.iter().min_by_key(|(_, e)| e.fused).map(|(k, _)| k.clone())
            {
                self.entries.remove(&coldest);
            }
        }
        self.entries.insert(
            ids.to_vec(),
            AffinityEntry {
                fused: weight,
                cache_hits: if cached { weight } else { 0 },
                senses,
                pages,
            },
        );
    }

    /// Distinct operand sets currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tracked facts for one operand set (sorted ids).
    pub fn entry(&self, ids: &[OperandId]) -> Option<AffinityEntry> {
        self.entries.get(ids).copied()
    }

    /// Consumes a set's heat (fuse and cache-hit counts; the cost facts
    /// stay). The planner calls this when it acts on a set, so the next
    /// regroup of the same set requires *fresh* observations — without
    /// this, two overlapping hot sets would steal their shared operand
    /// back and forth on every pass off the same stale counts.
    pub(crate) fn consume(&mut self, ids: &[OperandId]) {
        if let Some(entry) = self.entries.get_mut(ids) {
            entry.fused = 0;
            entry.cache_hits = 0;
        }
    }

    /// All tracked sets as regrouping candidates, hottest first.
    pub fn candidates(&self) -> Vec<HotSet> {
        let mut out: Vec<HotSet> =
            self.entries.iter().map(|(ids, e)| HotSet { ids: ids.clone(), stats: *e }).collect();
        out.sort_by(|a, b| {
            (b.stats.fused, &a.ids).cmp(&(a.stats.fused, &b.ids)) // hottest first, ids tiebreak
        });
        out
    }

    /// Forgets everything (e.g. after a workload change).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// One co-fused operand set, as ranked by [`AffinityTracker::candidates`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSet {
    /// The set's operand ids (sorted).
    pub ids: Vec<OperandId>,
    /// Aggregate affinity facts.
    pub stats: AffinityEntry,
}

impl HotSet {
    /// Modeled senses per stripe — 1.0 means already co-located, higher
    /// means scattered across blocks/planes.
    pub fn senses_per_stripe(&self) -> f64 {
        self.stats.senses as f64 / self.stats.pages.max(1) as f64
    }

    /// Stable identity of the set (hash of the sorted ids) — names the
    /// gather group and keys the planned-set ledger.
    pub fn key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.ids.hash(&mut h);
        h.finish()
    }
}

/// Chooses which hot sets deserve gathering. Select a policy with
/// [`set_regroup_policy`](crate::device::FlashCosmosDevice::set_regroup_policy).
pub trait RegroupPolicy: std::fmt::Debug + Send + Sync {
    /// Indices into `candidates` worth regrouping, most valuable first.
    fn select(&self, candidates: &[HotSet], cfg: &MaintenanceConfig) -> Vec<usize>;
}

/// The default regrouping policy: a set is worth gathering when it was
/// fused at least [`MaintenanceConfig::min_cofuse`] times *and* its unit
/// still costs at least [`MaintenanceConfig::scatter_ratio`] senses per
/// stripe (a co-located set costs exactly one).
#[derive(Debug, Clone, Copy, Default)]
pub struct HotSetRegrouper;

impl RegroupPolicy for HotSetRegrouper {
    fn select(&self, candidates: &[HotSet], cfg: &MaintenanceConfig) -> Vec<usize> {
        candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.stats.fused >= cfg.min_cofuse && c.senses_per_stripe() >= cfg.scatter_ratio
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Tuning knobs of the maintenance layer. Set with
/// [`set_maintenance_config`](crate::device::FlashCosmosDevice::set_maintenance_config).
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceConfig {
    /// Minimum times a set must have been co-fused before it is hot.
    pub min_cofuse: u64,
    /// Minimum modeled senses per stripe for a set to count as scattered
    /// (1.0 = already co-located).
    pub scatter_ratio: f64,
    /// Cap on jobs queued per planning pass, applied at hot-set
    /// granularity (a set's jobs are never split across passes; a single
    /// set larger than the cap still plans whole).
    pub max_jobs_per_pass: usize,
    /// A drain may extend its critical path to `critical × slack_factor`
    /// with fill-in migration work…
    pub slack_factor: f64,
    /// …but never below this absolute budget, µs — the maintenance
    /// window an otherwise idle drain may spend.
    pub slack_floor_us: f64,
    /// Bound on the retired-job log ([`Session::retired_jobs`]).
    ///
    /// [`Session::retired_jobs`]: crate::session::Session::retired_jobs
    pub retired_log_capacity: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        Self {
            min_cofuse: 2,
            scatter_ratio: 1.5,
            max_jobs_per_pass: 64,
            slack_factor: 1.25,
            // One ESP program is 400 µs; leave room for a handful of
            // page moves per otherwise-idle drain.
            slack_floor_us: 5_000.0,
            retired_log_capacity: 64,
        }
    }
}

/// One planned migration: move `operand` into the gather group described
/// by `hints`, provided its placement generation still matches.
///
/// Queued jobs are audited by `FC106` (see `LINTS.md`): the operand id
/// and name must describe the same live record, `expected_generation`
/// must not exceed the table's (snapshots of the past, never the
/// future), and `target_die` must exist.
#[derive(Debug, Clone, PartialEq)]
pub struct RegroupJob {
    /// The operand's registered name (what `migrate_operand` takes).
    pub name: String,
    /// The operand id.
    pub operand: OperandId,
    /// Destination placement (gather group + colocation domain + target
    /// die).
    pub hints: StoreHints,
    /// The operand's placement generation at planning time; execution
    /// drops the job (retires it) when the live generation differs.
    pub expected_generation: u64,
    /// Stripe pages the migration moves.
    pub pages: usize,
    /// Target die (wear-aware pick at planning time).
    pub target_die: usize,
    /// Identity of the hot set this job belongs to (the planner skips a
    /// set while any of its jobs are still queued).
    pub set_key: u64,
}

/// A job dropped instead of applied: its operand mutated between
/// planning and execution. Kept in a bounded log for observability.
#[derive(Debug, Clone, PartialEq)]
pub struct RetiredJob {
    /// The operand's registered name.
    pub name: String,
    /// The operand id.
    pub operand: OperandId,
    /// Generation the plan was based on.
    pub expected_generation: u64,
    /// Generation found at execution time.
    pub found_generation: u64,
}

/// Outcome of one maintenance execution pass (standalone
/// [`run_maintenance`](crate::device::FlashCosmosDevice::run_maintenance)
/// or the fill-in slice of a [`DrainStats`](crate::session::DrainStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaintenanceStats {
    /// Migration jobs applied.
    pub jobs_executed: usize,
    /// Jobs left queued because they did not fit the slack budget.
    pub jobs_deferred: usize,
    /// Jobs dropped on a generation mismatch (see [`RetiredJob`]).
    pub jobs_retired: usize,
    /// Pages moved by the executed jobs.
    pub pages_moved: u64,
    /// Pages that moved via the chip's copyback fast path.
    pub copybacks: u64,
    /// Modeled chip time of the fill-in work, µs.
    pub fill_time_us: f64,
    /// The critical-path budget the fill-in had to respect, µs.
    pub budget_us: f64,
    /// Busiest die after fill-in, µs (≤ `budget_us` whenever any budget
    /// was finite).
    pub critical_path_us: f64,
    /// Aged pages refreshed by the retention scrubber during this drain
    /// (see [`crate::recovery`]); scrubbing shares the slack budget.
    pub pages_scrubbed: u64,
    /// Scrub jobs left queued because they did not fit the slack budget.
    pub scrubs_deferred: usize,
}

impl crate::device::DeviceCore {
    /// Plans regrouping work from the affinity tracker's observations:
    /// the installed [`RegroupPolicy`] selects hot scattered sets, and
    /// each becomes one [`RegroupJob`] per operand, gathering the set
    /// into a shared placement group (one colocation domain) on the
    /// least-worn die — or onto the set's *existing* gather-group die
    /// when a partial earlier pass already placed it (the FTL joins the
    /// cached group placement, so the job's cost model must name that
    /// die). A set is skipped while its jobs are still queued, and while
    /// its operands actually share one placement group — so a set that
    /// later re-scatters (an overlapping hot set migrated a member away)
    /// becomes plannable again. Returns the number of jobs queued by
    /// this pass.
    pub fn schedule_maintenance(&mut self) -> usize {
        let candidates = self.session.affinity().candidates();
        let picks = self.regroup_policy.select(&candidates, &self.maintenance_cfg);
        if picks.is_empty() {
            return 0;
        }
        // Gathering targets are always wear-aware, whatever the write
        // path's placement policy is. `queued_on` tracks gather jobs
        // already aimed per die (earlier passes' backlog plus the sets
        // planned below), so distinct hot sets spread across dies
        // instead of all landing on one snapshot's least-worn die.
        let query = self.placement_query(true);
        let mut queued_on = vec![0u64; query.dies];
        for job in self.session.jobs().iter() {
            queued_on[job.target_die] += 1;
        }
        let mut queued = 0usize;
        for idx in picks {
            let set = &candidates[idx];
            let key = set.key();
            if self.session.jobs().iter().any(|j| j.set_key == key) {
                continue; // already planned, still queued
            }
            // Already co-located (all operands share one group)? Nothing
            // to gather — this also stops replanning sets whose senses
            // stem from in-group block overflow, which migration cannot
            // improve.
            let first_group = self.operands.get(set.ids[0]).map(|r| r.group_index);
            if set.ids.iter().all(|&id| {
                self.operands.get(id).map(|r| r.group_index) == first_group && first_group.is_some()
            }) {
                continue;
            }
            // Multi-level operands cannot migrate (their wordlines back
            // several aliased pages), so a set containing one is not
            // gatherable.
            if set.ids.iter().any(|&id| self.operands.get(id).is_none_or(|r| r.ml)) {
                continue;
            }
            // Gathering requires polarity-uniform, still-registered
            // operands (an AND set stores raw pages, an OR set inverses;
            // a mixed block cannot single-sense either way).
            let polarities: Option<Vec<bool>> =
                set.ids.iter().map(|&id| self.operand_inverted(id)).collect();
            let Some(polarities) = polarities else { continue };
            if polarities.windows(2).any(|w| w[0] != w[1]) {
                continue;
            }
            let inverted = polarities[0];
            let gather = format!("fc-gather-{key:016x}");
            let domain = format!("fc-gatherdom-{key:016x}");
            let gather_index = self.group_index_by_name(&gather);
            // A replan after a partial pass must target where the gather
            // group already sits, not today's least-worn die.
            let target_die =
                self.group_base_die(&gather).unwrap_or_else(|| least_worn_die(&query, &queued_on));
            let mut set_jobs = Vec::with_capacity(set.ids.len());
            for &id in &set.ids {
                let rec = &self.operands[id];
                if Some(rec.group_index) == gather_index {
                    continue; // already gathered (a retired sibling re-armed the set)
                }
                let hints = crate::device::StoreHints {
                    group: gather.clone(),
                    inverted,
                    die: Some(target_die),
                    colocate: Some(domain.clone()),
                    scheme: None,
                };
                set_jobs.push(RegroupJob {
                    name: rec.name.clone(),
                    operand: id,
                    hints,
                    expected_generation: rec.generation,
                    pages: rec.lpns.len(),
                    target_die,
                    set_key: key,
                });
            }
            if set_jobs.is_empty() {
                continue;
            }
            // The per-pass cap applies at set granularity — a set's jobs
            // are never split (a half-planned set would look done and
            // not finish gathering until re-observed). A set that alone
            // exceeds the cap still plans whole, as the first of its
            // pass.
            if queued > 0 && queued + set_jobs.len() > self.maintenance_cfg.max_jobs_per_pass {
                break;
            }
            // Acting on the observations consumes them: regathering this
            // set later (e.g. after an overlapping hot set steals a
            // member) requires `min_cofuse` *fresh* co-queries, so
            // sustained conflicts migrate at most once per min_cofuse
            // queries instead of on every pass.
            self.session.affinity().consume(&set.ids);
            queued_on[target_die] += set_jobs.len() as u64;
            queued += set_jobs.len();
            self.session.jobs().extend(set_jobs);
            if queued >= self.maintenance_cfg.max_jobs_per_pass {
                break;
            }
        }
        queued
    }

    /// Plans ([`schedule_maintenance`](Self::schedule_maintenance)) and
    /// then executes **every** queued migration job immediately, with no
    /// critical-path budget — the foreground maintenance pass for tests,
    /// tools and explicit reorganization windows. Background operation
    /// queues jobs instead and lets the drain fill them into
    /// idle-die slack.
    ///
    /// # Errors
    ///
    /// Propagates migration failures (the failing job is consumed; the
    /// rest stay queued).
    pub fn run_maintenance(&mut self) -> Result<MaintenanceStats, crate::device::FcError> {
        self.schedule_maintenance();
        let mut queues = fc_ssd::pipeline::DieQueues::for_config(self.ssd.config());
        self.execute_maintenance(&mut queues, f64::INFINITY)
    }

    /// Executes queued migration jobs into `queues`' idle slack, stopping
    /// at the first job whose modeled chip time would push any touched
    /// die past `budget_us`. A job whose operand generation no longer
    /// matches its plan is retired (logged, never applied); once the set
    /// is re-observed hot, a later planning pass sees it still scattered
    /// and finishes it.
    pub(crate) fn execute_maintenance(
        &mut self,
        queues: &mut fc_ssd::pipeline::DieQueues,
        budget_us: f64,
    ) -> Result<MaintenanceStats, crate::device::FcError> {
        let (tr_us, tesp_us) = {
            let cfg = self.ssd.config();
            (cfg.tr_us, cfg.tesp_us)
        };
        let mut stats = MaintenanceStats { budget_us, ..MaintenanceStats::default() };
        // Jobs that miss the budget are *skipped over*, not head-of-line
        // blockers: a single oversized job (more pages than any drain's
        // slack can swallow) must not wedge unrelated work behind it —
        // it re-queues, in order, for a bigger budget or a foreground
        // `run_maintenance`.
        let mut deferred: std::collections::VecDeque<RegroupJob> =
            std::collections::VecDeque::new();
        loop {
            // `let-else` drops the queue guard at the end of the
            // statement — a `while let` would hold it across the whole
            // body and deadlock on the re-lock below.
            let Some(job) = self.session.jobs().pop_front() else { break };
            let found = self.operand_generation(job.operand);
            if found != job.expected_generation {
                stats.jobs_retired += 1;
                self.session.bump_jobs_retired();
                let mut log = self.session.retired_log();
                log.push_back(RetiredJob {
                    name: job.name,
                    operand: job.operand,
                    expected_generation: job.expected_generation,
                    found_generation: found,
                });
                while log.len() > self.maintenance_cfg.retired_log_capacity {
                    log.pop_front();
                }
                continue;
            }
            // Modeled chip time: each stripe page senses on its source
            // die and programs on the target die (a die-internal move —
            // copyback — keeps both halves on one die).
            let cfg = self.ssd.config();
            let mut work: Vec<(usize, f64)> = Vec::new();
            for die in &self.operands[job.operand].dies {
                let src = die.flat(cfg);
                if src == job.target_die {
                    work.push((src, tr_us + tesp_us));
                } else {
                    work.push((src, tr_us));
                    work.push((job.target_die, tesp_us));
                }
            }
            if !queues.try_fill(&work, budget_us) {
                deferred.push_back(job);
                continue;
            }
            let moved_us: f64 = work.iter().map(|&(_, us)| us).sum();
            let copybacks = match self.migrate_operand(&job.name, job.hints.clone()) {
                Ok(c) => c,
                Err(e) => {
                    // The failing job is consumed, but neither the
                    // skipped-over jobs nor the untouched remainder may
                    // be dropped with it.
                    let mut jobs = self.session.jobs();
                    while let Some(j) = deferred.pop_back() {
                        jobs.push_front(j);
                    }
                    return Err(e);
                }
            };
            stats.jobs_executed += 1;
            stats.pages_moved += job.pages as u64;
            stats.copybacks += copybacks;
            stats.fill_time_us += moved_us;
        }
        stats.jobs_deferred = deferred.len();
        *self.session.jobs() = deferred;
        stats.critical_path_us = queues.busiest_us();
        Ok(stats)
    }
}

impl crate::device::FlashCosmosDevice {
    /// Plans regrouping work from the affinity tracker's observations —
    /// see the maintenance module docs for the policy. Takes the
    /// exclusive device lock (planning reads placement and wear state
    /// that must not shear under it).
    pub fn schedule_maintenance(&self) -> usize {
        self.core_write().schedule_maintenance()
    }

    /// Plans ([`Self::schedule_maintenance`]) and then executes
    /// **every** queued migration job immediately, with no critical-path
    /// budget — the foreground maintenance pass for tests, tools and
    /// explicit reorganization windows. Background operation queues jobs
    /// instead and lets [`Self::drain`] fill them into idle-die slack.
    /// Runs under the exclusive device lock.
    ///
    /// # Errors
    ///
    /// Propagates migration failures (the failing job is consumed; the
    /// rest stay queued).
    pub fn run_maintenance(&self) -> Result<MaintenanceStats, crate::device::FcError> {
        self.core_write().run_maintenance()
    }
}

/// The die with the least summed P/E wear — the §10 gathering target
/// that doubles as wear levelling. Ties break first on the gather jobs
/// already aimed at the die's *channel* (a gathered set's future senses
/// all stream out over one bus, so back-to-back hot sets spread across
/// channels), then on block pressure plus the jobs aimed at the die
/// itself (`queued_on`) — distinct hot sets planned in one pass spread
/// out instead of piling onto the snapshot's least-worn die.
fn least_worn_die(q: &PlacementQuery, queued_on: &[u64]) -> usize {
    let mut chan_queued = vec![0u64; q.channels()];
    for (d, &n) in queued_on.iter().enumerate() {
        chan_queued[q.channel_of(d)] += n;
    }
    (0..q.dies)
        .min_by_key(|&d| {
            (q.die_wear(d), chan_queued[q.channel_of(d)], q.die_pressure(d) + queued_on[d], d)
        })
        .expect("an SSD has at least one die")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(pressures: Vec<u32>, wear: Vec<u64>) -> PlacementQuery {
        let planes = pressures.len();
        PlacementQuery { pressures, wear, planes_per_die: 2, dies: planes / 2, dies_per_channel: 1 }
    }

    #[test]
    fn spread_policy_rotates_dies_on_ties() {
        let mut p = SpreadPlacement::new();
        let q = query(vec![0; 8], vec![0; 8]);
        let first = p.choose_plane(&q, None);
        let second = p.choose_plane(&q, None);
        assert_ne!(first / 2, second / 2, "pressure ties must rotate dies");
        // A pin restricts to the die's planes.
        assert_eq!(p.choose_plane(&q, Some(3)) / 2, 3);
    }

    #[test]
    fn spread_policy_hops_channels_before_dies() {
        // 4 dies on 2 channels (dies 0,1 on channel 0; dies 2,3 on
        // channel 1): consecutive tie placements alternate channel buses
        // before reusing one, and the full tie rotation still visits
        // every die once.
        let mut p = SpreadPlacement::new();
        let q = PlacementQuery {
            pressures: vec![0; 8],
            wear: vec![0; 8],
            planes_per_die: 2,
            dies: 4,
            dies_per_channel: 2,
        };
        let dies: Vec<usize> = (0..4).map(|_| p.choose_plane(&q, None) / 2).collect();
        assert_eq!(dies, vec![0, 2, 1, 3], "channel-first order: ch0, ch1, ch0, ch1");
        let channels: Vec<usize> = dies.iter().map(|d| q.channel_of(*d)).collect();
        assert_eq!(channels, vec![0, 1, 0, 1]);
    }

    #[test]
    fn gather_target_spreads_queued_sets_across_channels() {
        // Even wear everywhere; 3 gather jobs already aimed at die 0
        // (channel 0). The channel-aware tie-break sends the next set to
        // channel 1 — not merely a different die on the loaded bus.
        let q = PlacementQuery {
            pressures: vec![0; 8],
            wear: vec![0; 8],
            planes_per_die: 2,
            dies: 4,
            dies_per_channel: 2,
        };
        let target = least_worn_die(&q, &[3, 0, 0, 0]);
        assert_eq!(q.channel_of(target), 1, "queued channel 0 load repels the gather");
    }

    #[test]
    fn wear_aware_policy_avoids_worn_planes() {
        let mut p = WearAwarePlacement::new();
        // Die 0 heavily cycled, die 1 mildly, dies 2/3 fresh.
        let q = query(vec![0; 8], vec![9000, 9000, 40, 40, 0, 0, 0, 0]);
        let plane = p.choose_plane(&q, None);
        assert!(plane >= 4, "fresh dies win: got plane {plane}");
        // Pinned to the worn die, it still picks the less-worn plane.
        let q2 = query(vec![0; 8], vec![9000, 10, 0, 0, 0, 0, 0, 0]);
        let mut p2 = WearAwarePlacement::new();
        assert_eq!(p2.choose_plane(&q2, Some(0)), 1);
        // Even wear degrades to the spread behavior (distinct dies).
        let even = query(vec![0; 8], vec![5; 8]);
        let a = p2.choose_plane(&even, None);
        let b = p2.choose_plane(&even, None);
        assert_ne!(a / 2, b / 2);
    }

    #[test]
    fn cache_policies_score_as_documented() {
        let old_hot = CacheEntryInfo { hits: 9, senses: 4, seq: 1, bits: 256 };
        let young_cold = CacheEntryInfo { hits: 0, senses: 4, seq: 9, bits: 256 };
        let fifo = FifoAdmission;
        assert!(fifo.score(&old_hot) < fifo.score(&young_cold), "FIFO evicts oldest");
        assert!(fifo.admit(&young_cold, &old_hot), "FIFO always admits");
        let cost = CostAwareAdmission;
        assert!(cost.score(&old_hot) > cost.score(&young_cold), "hits outweigh age");
        assert!(!cost.admit(&young_cold, &old_hot), "cold insert cannot displace hot entry");
        assert!(cost.admit(&young_cold, &young_cold), "equal scores admit (degrades to FIFO)");
        // Senses weigh in: an expensive entry outranks a cheap one.
        let cheap = CacheEntryInfo { hits: 1, senses: 1, seq: 2, bits: 256 };
        let dear = CacheEntryInfo { hits: 1, senses: 8, seq: 3, bits: 256 };
        assert!(cost.score(&dear) > cost.score(&cheap));
    }

    #[test]
    fn affinity_tracker_records_and_bounds() {
        let mut t = AffinityTracker { entries: HashMap::new(), capacity: 2 };
        t.record(&[1, 2], 4, 1, 1, false);
        t.record(&[1, 2], 4, 1, 2, true);
        t.record(&[3, 4], 2, 1, 1, false);
        let e = t.entry(&[1, 2]).unwrap();
        assert_eq!(e.fused, 3);
        assert_eq!(e.cache_hits, 2);
        assert_eq!(e.senses, 4);
        // Single-operand sets carry no signal.
        t.record(&[7], 1, 1, 1, false);
        assert_eq!(t.len(), 2);
        // Capacity bound: the coldest set ([3,4], fused 1) is dropped.
        t.record(&[5, 6], 8, 2, 1, false);
        assert_eq!(t.len(), 2);
        assert!(t.entry(&[3, 4]).is_none());
        assert!(t.entry(&[1, 2]).is_some());
        // Candidates rank hottest first.
        let c = t.candidates();
        assert_eq!(c[0].ids, vec![1, 2]);
        assert_eq!(c[1].senses_per_stripe(), 4.0, "8 senses over 2 stripes");
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn hot_set_regrouper_filters_on_heat_and_scatter() {
        let cfg = MaintenanceConfig::default();
        let mk = |ids: Vec<usize>, fused, senses, pages| HotSet {
            ids,
            stats: AffinityEntry { fused, cache_hits: 0, senses, pages },
        };
        let candidates = vec![
            mk(vec![0, 1], 5, 4, 1), // hot and scattered → selected
            mk(vec![2, 3], 1, 4, 1), // too cold
            mk(vec![4, 5], 5, 1, 1), // already co-located
            mk(vec![6, 7], 2, 3, 2), // exactly at both thresholds → selected
        ];
        assert_eq!(HotSetRegrouper.select(&candidates, &cfg), vec![0, 3]);
    }
}
