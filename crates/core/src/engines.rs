//! The four evaluated platforms (§7): OSP, ISP, ParaBit and Flash-Cosmos,
//! expressed as job-list builders for the SSD pipeline model.
//!
//! A workload is summarized by its [`WorkloadShape`] — how many operand
//! vectors of what size are combined per query, and what the host does
//! with the result. Each platform lowers the shape differently:
//!
//! * **OSP** — every operand page crosses channel + external link; the
//!   host combines (hidden behind the stream) — Fig. 7b.
//! * **ISP** — operands stop at the controller's accelerator; only
//!   results cross the external link — Fig. 7c.
//! * **ParaBit** — one sensing operation *per operand*, accumulating in
//!   the latches; only results move — Fig. 7d.
//! * **Flash-Cosmos** — `ceil(operands / 48)` MWS operations per result
//!   page; only results move (§6).

use fc_host::HostCpu;
use fc_ssd::pipeline::{HostWork, PipelineModel, SenseJob};
use fc_ssd::topology::Striping;
use fc_ssd::{ExecutionReport, SsdConfig};
use serde::{Deserialize, Serialize};

/// The four evaluated computing platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Outside-storage processing (host CPU).
    Osp,
    /// In-storage processing (controller accelerator).
    Isp,
    /// ParaBit in-flash processing.
    ParaBit,
    /// Flash-Cosmos in-flash processing.
    FlashCosmos,
}

impl Platform {
    /// All platforms in the paper's presentation order.
    pub const ALL: [Platform; 4] =
        [Platform::Osp, Platform::Isp, Platform::ParaBit, Platform::FlashCosmos];
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Platform::Osp => write!(f, "OSP"),
            Platform::Isp => write!(f, "ISP"),
            Platform::ParaBit => write!(f, "PB"),
            Platform::FlashCosmos => write!(f, "FC"),
        }
    }
}

/// Cost-model summary of a bulk bitwise workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadShape {
    /// Workload name (display).
    pub name: String,
    /// Independent queries (e.g. one per k-clique).
    pub queries: u64,
    /// Operands AND-ed per query.
    pub and_operands: u64,
    /// Extra operands OR-ed onto each query's result (KCS: the clique
    /// vector).
    pub or_operands: u64,
    /// Bytes per operand vector (= bytes per per-query result).
    pub vector_bytes: u64,
    /// Whether the host bit-counts the result (BMI's final step).
    pub result_popcount: bool,
}

impl WorkloadShape {
    /// Total operand bytes read by operand-moving platforms.
    pub fn total_operand_bytes(&self) -> u64 {
        self.queries * (self.and_operands + self.or_operands) * self.vector_bytes
    }

    /// Total result bytes leaving the SSD.
    pub fn total_result_bytes(&self) -> u64 {
        self.queries * self.vector_bytes
    }

    /// Operands per query (the paper's "number of operands").
    pub fn operands_per_query(&self) -> u64 {
        self.and_operands + self.or_operands
    }
}

/// Per-platform evaluation result.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// Which platform.
    pub platform: Platform,
    /// Pipeline execution report (time + energy).
    pub report: ExecutionReport,
}

impl PlatformReport {
    /// Execution time, µs.
    pub fn time_us(&self) -> f64 {
        self.report.makespan_us
    }

    /// Total energy, J.
    pub fn energy_j(&self) -> f64 {
        self.report.energy_j()
    }
}

/// Evaluates workload shapes on the four platforms.
#[derive(Debug, Clone)]
pub struct Engines {
    config: SsdConfig,
    host: HostCpu,
}

impl Engines {
    /// Creates the evaluation engines for an SSD and host.
    pub fn new(config: SsdConfig, host: HostCpu) -> Self {
        Self { config, host }
    }

    /// The paper's evaluated system (Table 1).
    pub fn paper() -> Self {
        Self::new(SsdConfig::paper_table1(), HostCpu::paper_host())
    }

    /// The SSD configuration in use.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Evaluates one platform on one workload shape.
    pub fn evaluate(&self, platform: Platform, shape: &WorkloadShape) -> PlatformReport {
        self.evaluate_batch(platform, std::slice::from_ref(shape))
    }

    /// Evaluates one platform on a whole batch of workload shapes in a
    /// single pipeline run — the cost-model counterpart of the device's
    /// `submit`: per-die job lists are concatenated and host work merged,
    /// so the batch pays the pipeline fill/drain once instead of once per
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics if `shapes` is empty.
    pub fn evaluate_batch(&self, platform: Platform, shapes: &[WorkloadShape]) -> PlatformReport {
        assert!(!shapes.is_empty(), "a batch needs at least one workload shape");
        let mut jobs: Vec<Vec<SenseJob>> = Vec::new();
        let mut host = HostWork::default();
        let mut isp_bytes = 0u64;
        for shape in shapes {
            let (shape_jobs, shape_host, shape_isp) = self.build(platform, shape);
            fc_ssd::pipeline::append_die_jobs(&mut jobs, shape_jobs);
            host.merge(&shape_host);
            isp_bytes += shape_isp;
        }
        let model = PipelineModel::new(self.config.clone());
        let mut report = model.run(&jobs, host);
        if isp_bytes > 0 {
            report.energy.add_isp_bytes(isp_bytes);
        }
        PlatformReport { platform, report }
    }

    /// Evaluates all four platforms.
    pub fn evaluate_all(&self, shape: &WorkloadShape) -> Vec<PlatformReport> {
        Platform::ALL.iter().map(|&p| self.evaluate(p, shape)).collect()
    }

    /// Speedups over OSP for ISP/PB/FC (the Fig. 17 rows).
    pub fn speedups_over_osp(&self, shape: &WorkloadShape) -> Vec<(Platform, f64)> {
        let reports = self.evaluate_all(shape);
        let osp_time = reports[0].time_us();
        reports.into_iter().skip(1).map(|r| (r.platform, osp_time / r.time_us())).collect()
    }

    /// Energy-efficiency gains over OSP (the Fig. 18 rows: bits/energy
    /// normalized to OSP = energy ratio for identical output bits).
    pub fn energy_gains_over_osp(&self, shape: &WorkloadShape) -> Vec<(Platform, f64)> {
        let reports = self.evaluate_all(shape);
        let osp_energy = reports[0].energy_j();
        reports.into_iter().skip(1).map(|r| (r.platform, osp_energy / r.energy_j())).collect()
    }

    /// Builds (die jobs, host work, ISP accelerator bytes).
    fn build(
        &self,
        platform: Platform,
        shape: &WorkloadShape,
    ) -> (Vec<Vec<SenseJob>>, HostWork, u64) {
        let cfg = &self.config;
        let striping = Striping::new(cfg);
        let pages_per_vector = shape.vector_bytes.div_ceil(cfg.page_bytes as u64);
        // Die-steps per vector: each step is one multi-plane sense
        // covering `planes_per_die` stripes.
        let steps = striping.max_pages_per_plane(pages_per_vector).max(1);
        let chunk = (cfg.page_bytes * cfg.planes_per_die) as u64;
        let ops = shape.operands_per_query();
        let dies = cfg.total_dies();

        // Batching: coalesce identical per-die steps so huge sweeps stay
        // tractable; latency/bytes scale with the batch, so makespan and
        // energy are unchanged (uniform pipelines are time-invariant).
        let total_units = shape.queries * steps;
        let batch = total_units.div_ceil(2_000).max(1);
        let batches = total_units.div_ceil(batch);
        let scale = |b: u64| b * batch.min(total_units);

        let host;
        let mut isp_bytes = 0u64;
        let per_die: Vec<SenseJob> = match platform {
            Platform::Osp => {
                host = self.host_work(shape, true);
                let job = SenseJob {
                    latency_us: cfg.tr_us * (batch * ops) as f64,
                    dma_bytes: scale(ops) * chunk,
                    ext_bytes: scale(ops) * chunk,
                    norm_power: 1.0,
                };
                vec![job; batches as usize]
            }
            Platform::Isp => {
                host = self.host_work(shape, false);
                isp_bytes = shape.total_operand_bytes();
                let job = SenseJob {
                    latency_us: cfg.tr_us * (batch * ops) as f64,
                    dma_bytes: scale(ops) * chunk,
                    // The accelerator emits the result chunk once a
                    // query-step's operands have all arrived.
                    ext_bytes: scale(1) * chunk,
                    norm_power: 1.0,
                };
                vec![job; batches as usize]
            }
            Platform::ParaBit => {
                host = self.host_work(shape, false);
                let job = SenseJob {
                    latency_us: cfg.tr_us * (batch * ops) as f64,
                    dma_bytes: scale(1) * chunk,
                    ext_bytes: scale(1) * chunk,
                    norm_power: 1.0,
                };
                vec![job; batches as usize]
            }
            Platform::FlashCosmos => {
                host = self.host_work(shape, false);
                let senses = self.fc_senses_per_query(shape);
                let power = self.fc_norm_power(shape);
                let job = SenseJob {
                    latency_us: cfg.tmws_us * (batch * senses) as f64,
                    dma_bytes: scale(1) * chunk,
                    ext_bytes: scale(1) * chunk,
                    norm_power: power,
                };
                vec![job; batches as usize]
            }
        };
        (vec![per_die; dies], host, isp_bytes)
    }

    /// Sensing operations Flash-Cosmos needs per query-step (§6.1):
    /// `ceil(AND operands / string length)` intra-block MWS commands,
    /// with up to `cap − 1` OR operands fused into the last command and
    /// extra commands for any remainder.
    pub fn fc_senses_per_query(&self, shape: &WorkloadShape) -> u64 {
        let per_block = self.config.wls_per_block as u64;
        let cap = self.config.max_inter_blocks as u64;
        let and_senses = shape.and_operands.div_ceil(per_block).max(1);
        let fused_or = shape.or_operands.min(cap - 1);
        let extra_or = (shape.or_operands - fused_or).div_ceil(cap);
        and_senses + extra_or
    }

    /// Chip power during a Flash-Cosmos sense, normalized (Fig. 14): the
    /// last command activates `1 + min(or, cap−1)` blocks.
    fn fc_norm_power(&self, shape: &WorkloadShape) -> f64 {
        let cap = self.config.max_inter_blocks as u64;
        let blocks = 1 + shape.or_operands.min(cap - 1) as usize;
        fc_nand::power::mws_power_norm(blocks)
    }

    fn host_work(&self, shape: &WorkloadShape, osp: bool) -> HostWork {
        let result = shape.total_result_bytes();
        let operands = if osp { shape.total_operand_bytes() } else { 0 };
        let popcount = if shape.result_popcount { result } else { 0 };
        let cpu_bytes = operands + popcount;
        // OSP streams at the bitwise-combine rate; pure post-processing
        // runs at popcount rate.
        let cpu_gbps = if osp { self.host.bitwise_gbps } else { self.host.popcount_gbps };
        HostWork {
            cpu_bytes,
            cpu_gbps,
            cpu_pj_per_byte: self.host.pj_per_byte,
            dram_bytes: 2 * (operands + result),
            dram_pj_per_byte: self.host.dram.pj_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bmi_shape(months: u64) -> WorkloadShape {
        WorkloadShape {
            name: format!("BMI m={months}"),
            queries: 1,
            and_operands: months * 30,
            or_operands: 0,
            vector_bytes: 100_000_000,
            result_popcount: true,
        }
    }

    #[test]
    fn ordering_matches_fig17() {
        let engines = Engines::paper();
        let shape = bmi_shape(12);
        let r = engines.evaluate_all(&shape);
        let t = |p: usize| r[p].time_us();
        // OSP slowest, then ISP, then PB, then FC.
        assert!(t(0) > t(1), "ISP beats OSP");
        assert!(t(1) > t(2), "PB beats ISP");
        assert!(t(2) > t(3), "FC beats PB");
    }

    #[test]
    fn bmi_speedups_land_in_paper_regime() {
        let engines = Engines::paper();
        // m = 36 → 1080 operands; paper: FC ≈ 198× over OSP, PB ≈ 14×.
        let s = engines.speedups_over_osp(&bmi_shape(36));
        let fc = s.iter().find(|(p, _)| *p == Platform::FlashCosmos).unwrap().1;
        let pb = s.iter().find(|(p, _)| *p == Platform::ParaBit).unwrap().1;
        assert!(fc > 80.0 && fc < 500.0, "FC speedup {fc} (paper: 198.4)");
        assert!(pb > 6.0 && pb < 40.0, "PB speedup {pb} (paper: 14)");
        assert!(fc / pb > 3.0, "FC/PB ratio {} (paper: ~14)", fc / pb);
    }

    #[test]
    fn fc_sense_count_model() {
        let engines = Engines::paper();
        assert_eq!(engines.fc_senses_per_query(&bmi_shape(1)), 1); // 30 ops
        assert_eq!(engines.fc_senses_per_query(&bmi_shape(36)), 23); // 1080
        let kcs = WorkloadShape {
            name: "KCS".into(),
            queries: 1024,
            and_operands: 32,
            or_operands: 1,
            vector_bytes: 4_000_000,
            result_popcount: false,
        };
        assert_eq!(engines.fc_senses_per_query(&kcs), 1, "AND+OR fuse into one MWS");
    }

    #[test]
    fn ims_is_transfer_bound_so_fc_equals_pb() {
        let engines = Engines::paper();
        let ims = WorkloadShape {
            name: "IMS".into(),
            queries: 1,
            and_operands: 3,
            or_operands: 0,
            vector_bytes: 10_000 * 800 * 600 * 4 / 8,
            result_popcount: false,
        };
        let s = engines.speedups_over_osp(&ims);
        let fc = s.iter().find(|(p, _)| *p == Platform::FlashCosmos).unwrap().1;
        let pb = s.iter().find(|(p, _)| *p == Platform::ParaBit).unwrap().1;
        // §8.1 observation six: FC ≈ PB on IMS (both result-transfer
        // bound), both ≈ 3× over OSP.
        assert!((fc / pb - 1.0).abs() < 0.25, "FC {fc} vs PB {pb}");
        assert!(fc > 2.0 && fc < 5.0, "IMS FC speedup {fc} (paper ~3)");
    }

    #[test]
    fn energy_gains_exceed_speedups_for_fc() {
        // §8.2: FC's energy benefits (95× avg) exceed its performance
        // benefits (32× avg) because sensing energy also drops.
        let engines = Engines::paper();
        let shape = bmi_shape(24);
        let speed = engines.speedups_over_osp(&shape);
        let energy = engines.energy_gains_over_osp(&shape);
        let fc_speed = speed.iter().find(|(p, _)| *p == Platform::FlashCosmos).unwrap().1;
        let fc_energy = energy.iter().find(|(p, _)| *p == Platform::FlashCosmos).unwrap().1;
        assert!(fc_energy > fc_speed, "energy gain {fc_energy} vs speedup {fc_speed}");
    }

    #[test]
    fn isp_beats_osp_modestly() {
        // §8.1: ISP ≈ 1.28× over OSP.
        let engines = Engines::paper();
        let s = engines.speedups_over_osp(&bmi_shape(6));
        let isp = s.iter().find(|(p, _)| *p == Platform::Isp).unwrap().1;
        assert!(isp > 1.05 && isp < 2.0, "ISP speedup {isp} (paper ~1.28)");
    }

    #[test]
    fn batched_evaluation_amortizes_pipeline_overheads() {
        let engines = Engines::paper();
        let shapes: Vec<WorkloadShape> = [3u64, 6, 12].iter().map(|&m| bmi_shape(m)).collect();
        for platform in Platform::ALL {
            let merged = engines.evaluate_batch(platform, &shapes);
            let serial: f64 = shapes.iter().map(|s| engines.evaluate(platform, s).time_us()).sum();
            let batched = merged.time_us();
            assert!(
                batched <= serial * 1.0001,
                "{platform}: batched {batched} µs must not exceed serial {serial} µs"
            );
            // Energy is workload-determined, not schedule-determined.
            let serial_energy: f64 =
                shapes.iter().map(|s| engines.evaluate(platform, s).energy_j()).sum();
            let e = merged.energy_j();
            assert!(
                (e - serial_energy).abs() / serial_energy < 0.01,
                "{platform}: batched energy {e} vs serial {serial_energy}"
            );
        }
    }

    #[test]
    fn single_shape_batch_matches_evaluate() {
        let engines = Engines::paper();
        let shape = bmi_shape(6);
        let a = engines.evaluate(Platform::FlashCosmos, &shape);
        let b = engines.evaluate_batch(Platform::FlashCosmos, std::slice::from_ref(&shape));
        assert_eq!(a.report.makespan_us, b.report.makespan_us);
    }

    #[test]
    fn shape_helpers() {
        let s = bmi_shape(1);
        assert_eq!(s.operands_per_query(), 30);
        assert_eq!(s.total_operand_bytes(), 30 * 100_000_000);
        assert_eq!(s.total_result_bytes(), 100_000_000);
    }
}
