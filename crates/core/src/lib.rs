//! # flash-cosmos — in-flash bulk bitwise operations
//!
//! Reproduction of *Flash-Cosmos: In-Flash Bulk Bitwise Operations Using
//! Inherent Computation Capability of NAND Flash Memory* (MICRO 2022).
//!
//! Flash-Cosmos performs bulk bitwise AND/OR/NOT/NAND/NOR/XOR/XNOR
//! *inside* NAND flash chips:
//!
//! * **Multi-Wordline Sensing (MWS)** reads tens of operands with a
//!   single sensing operation — intra-block sensing computes AND along
//!   NAND strings, inter-block sensing computes OR across blocks sharing
//!   bitlines.
//! * **Enhanced SLC-mode Programming (ESP)** widens threshold-voltage
//!   margins so the computation results carry zero bit errors, without
//!   ECC or data randomization.
//!
//! This crate provides the paper's contribution end to end:
//!
//! * [`expr`] — bitwise expressions over stored operand vectors.
//! * [`planner`] — compiles expressions to MWS command programs under
//!   the chip's latch-circuit rules (§6.1/Fig. 16).
//! * [`parabit`] — the ParaBit baseline compiler (serial sensing).
//! * [`device`] — the `fc_write`/`fc_read` interface (§6.3) over the
//!   functional SSD.
//! * [`engines`] — the four evaluated platforms (OSP/ISP/PB/FC) as
//!   pipeline-model job builders (Figs. 17/18).
//! * [`reliability`] — the §5 characterization harness (Figs. 8, 11–14,
//!   zero-error validation).
//! * [`timeline`] — the Fig. 7 OSP/ISP/IFP timeline scenario.
//!
//! ## Quickstart
//!
//! ```
//! use flash_cosmos::device::{FlashCosmosDevice, StoreHints};
//! use flash_cosmos::expr::Expr;
//! use fc_ssd::SsdConfig;
//! use fc_bits::BitVec;
//!
//! let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
//! let a = BitVec::from_fn(1000, |i| i % 2 == 0);
//! let b = BitVec::from_fn(1000, |i| i % 3 == 0);
//! let c = BitVec::from_fn(1000, |i| i % 5 == 0);
//! let ha = dev.fc_write("a", &a, StoreHints::and_group("g")).unwrap();
//! let hb = dev.fc_write("b", &b, StoreHints::and_group("g")).unwrap();
//! let hc = dev.fc_write("c", &c, StoreHints::and_group("g")).unwrap();
//! let (result, stats) = dev
//!     .fc_read(&Expr::and_vars([ha.id, hb.id, hc.id]))
//!     .unwrap();
//! assert_eq!(result, a.and(&b).and(&c));
//! // One sensing operation per plane-stripe, not one per operand.
//! assert_eq!(stats.senses, 4);
//! ```

pub mod device;
pub mod engines;
pub mod expr;
pub mod ops;
pub mod parabit;
pub mod placement;
pub mod planner;
pub mod reliability;
pub mod timeline;

pub use device::{FlashCosmosDevice, OperandHandle, ReadStats, StoreHints};
pub use engines::{Engines, Platform, PlatformReport, WorkloadShape};
pub use expr::{Expr, Nnf, OperandId};
pub use placement::{suggest_hints, LayoutAdvice};
pub use planner::{MwsProgram, PlacementMap, PlanError, PlannerCaps};
