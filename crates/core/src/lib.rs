//! # flash-cosmos — in-flash bulk bitwise operations
//!
//! Reproduction of *Flash-Cosmos: In-Flash Bulk Bitwise Operations Using
//! Inherent Computation Capability of NAND Flash Memory* (MICRO 2022).
//!
//! Flash-Cosmos performs bulk bitwise AND/OR/NOT/NAND/NOR/XOR/XNOR
//! *inside* NAND flash chips:
//!
//! * **Multi-Wordline Sensing (MWS)** reads tens of operands with a
//!   single sensing operation — intra-block sensing computes AND along
//!   NAND strings, inter-block sensing computes OR across blocks sharing
//!   bitlines.
//! * **Enhanced SLC-mode Programming (ESP)** widens threshold-voltage
//!   margins so the computation results carry zero bit errors, without
//!   ECC or data randomization.
//!
//! This crate provides the paper's contribution end to end:
//!
//! * [`expr`] — bitwise expressions over stored operand vectors, with
//!   `&`/`|`/`^`/`!` operator sugar on expressions and operand handles.
//! * [`planner`] — compiles expressions to MWS command programs under
//!   the chip's latch-circuit rules (§6.1/Fig. 16).
//! * [`parabit`] — the ParaBit baseline compiler (serial sensing).
//! * [`device`] — the `fc_write`/`fc_read` interface (§6.3) over the
//!   functional SSD.
//! * [`batch`] — the query-session API: a [`QueryBatch`] of many
//!   expressions submitted as one jointly planned device pass, with
//!   cross-query dedup, shared-term extraction and per-query cost
//!   attribution ([`BatchStats`]).
//! * [`session`] — queue-first submission on top of the batch API:
//!   [`FlashCosmosDevice::submit_async`] compiles batches into per-die
//!   work queues and returns a [`Ticket`]; [`FlashCosmosDevice::drain`]
//!   retires everything queued in one pass whose modeled critical path
//!   overlaps batches on idle dies ([`DrainStats`]); and a cross-batch
//!   **result cache** keyed by canonical form + per-operand *placement
//!   generations* replays repeated units without sensing — overwrites
//!   ([`FlashCosmosDevice::fc_overwrite`]), migrations and raw-SSD access
//!   bump the stamps, so stale results are structurally unservable.
//! * [`maintenance`] — the policy-driven maintenance layer: an affinity
//!   tracker records which operand sets get fused together (and what
//!   they cost), a pluggable regrouping policy turns hot scattered sets
//!   into migration jobs with wear-aware target selection, and a
//!   background executor fills the jobs into
//!   [`drain`](FlashCosmosDevice::drain)'s idle-die slack
//!   under a critical-path budget. The same policy split provides
//!   pluggable placement ([`SpreadPlacement`] / [`WearAwarePlacement`])
//!   and result-cache admission ([`CostAwareAdmission`] — the default,
//!   hit-frequency × senses-saved — vs [`FifoAdmission`]).
//! * [`recovery`] — the reliability tiers over the physics model's real
//!   bit errors: shifted-Vref read-retry (in the SSD device), cross-die
//!   XOR parity stripes with out-of-place rebuild, policy-driven
//!   retention scrubbing in drain's idle-die slack, and a deterministic
//!   typed fault-injection harness ([`FaultPlan`]) whose itemized faults
//!   bump only the touched operands' generations. [`DeviceHealth`]
//!   snapshots which tiers fired; queries that touch a page no tier
//!   could save fail individually ([`FcError::QueryFailed`]) while the
//!   rest of their batch completes.
//! * [`crossdie`] — cross-die execution plans: a query whose operands
//!   span planes splits into per-plane programs merged by the
//!   controller, so die-aware placement (see [`device`]) never turns
//!   into a `PlaneMismatch` error.
//! * [`engines`] — the four evaluated platforms (OSP/ISP/PB/FC) as
//!   pipeline-model job builders (Figs. 17/18), including batched
//!   multi-workload evaluation.
//! * [`reliability`] — the §5 characterization harness (Figs. 8, 11–14,
//!   zero-error validation).
//! * [`timeline`] — the Fig. 7 OSP/ISP/IFP timeline scenario.
//!
//! ## Die-aware placement
//!
//! Distinct placement groups spread across the SSD's dies (least-loaded
//! plane, die-rotating), so a batch of independent queries senses on
//! many dies concurrently — [`BatchStats::dies_used`] reports the spread
//! and [`BatchStats::critical_path_us`] is the busiest die's time, not
//! the serial sum. Groups one expression combines should share a plane
//! for MWS fusion: name a colocation domain with
//! [`StoreHints::colocated`](device::StoreHints::colocated) (the
//! [`suggest_hints`] advisor emits one per expression automatically), or
//! pin a group to a die with
//! [`StoreHints::with_die`](device::StoreHints::with_die).
//!
//! ## Quickstart: a batched query session
//!
//! Store operand vectors once, then submit whole batches of queries —
//! the planner dedups common work across queries and reports how many
//! sensing operations the joint plan saved versus serial execution:
//!
//! ```
//! use flash_cosmos::device::{FlashCosmosDevice, StoreHints};
//! use flash_cosmos::batch::QueryBatch;
//! use fc_ssd::SsdConfig;
//! use fc_bits::BitVec;
//!
//! let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
//! let a = BitVec::from_fn(1000, |i| i % 2 == 0);
//! let b = BitVec::from_fn(1000, |i| i % 3 == 0);
//! let c = BitVec::from_fn(1000, |i| i % 5 == 0);
//! let ha = dev.fc_write("a", &a, StoreHints::and_group("g")).unwrap();
//! let hb = dev.fc_write("b", &b, StoreHints::and_group("g")).unwrap();
//! let hc = dev.fc_write("c", &c, StoreHints::and_group("g")).unwrap();
//!
//! // Handles compose with operator sugar; a batch collects many queries.
//! let mut batch = QueryBatch::new();
//! let q_all = batch.push(ha & hb & hc);
//! let q_ab = batch.push(ha & hb);
//! let q_dup = batch.push(hc & hb & ha); // same function as q_all
//!
//! let out = dev.submit(&batch).unwrap();
//! assert_eq!(out.results[q_all], a.and(&b).and(&c));
//! assert_eq!(out.results[q_ab], a.and(&b));
//! assert_eq!(out.results[q_dup], out.results[q_all]);
//! // The duplicate was answered by the first query's pass: 2 queries'
//! // worth of senses for 3 queries.
//! assert_eq!(out.stats.deduped_queries, 1);
//! assert!(out.stats.senses < out.stats.serial_senses);
//! ```
//!
//! One-off queries keep the original single-expression entry point
//! ([`FlashCosmosDevice::fc_read`], now a thin wrapper over a one-query
//! batch), and [`FlashCosmosDevice::fc_read_into`] /
//! [`FlashCosmosDevice::submit_into`] write results into caller-owned
//! buffers for allocation-free steady state.

pub mod audit;
pub mod batch;
pub mod cluster;
pub mod crossdie;
pub mod device;
pub mod engines;
pub mod expr;
pub mod maintenance;
pub mod ops;
pub mod parabit;
pub mod placement;
pub mod planner;
pub mod recovery;
pub mod reliability;
pub mod session;
pub mod timeline;

pub use audit::{AuditConfig, AuditMode, Finding, LintCode, Severity};
pub use batch::{
    BatchResults, BatchStats, Bottleneck, QueryBatch, QueryFailure, QueryId, QueryStats,
};
pub use cluster::{ClusterResults, ClusterStats, FcCluster};
pub use device::{FcError, FlashCosmosDevice, OperandHandle, ReadStats, StoreHints};
pub use engines::{Engines, Platform, PlatformReport, WorkloadShape};
pub use expr::{Expr, Nnf, OperandId};
pub use maintenance::{
    AffinityTracker, CacheAdmission, CostAwareAdmission, FifoAdmission, HotSetRegrouper,
    MaintenanceConfig, MaintenanceStats, PlacementPolicy, RegroupPolicy, SpreadPlacement,
    WearAwarePlacement,
};
pub use placement::{suggest_hints, LayoutAdvice};
pub use planner::{MwsProgram, PlacementMap, PlanError, PlannerCaps};
pub use recovery::{
    DeviceHealth, FaultPlan, FaultReport, MarginScrubber, ScrubCandidate, ScrubConfig, ScrubPolicy,
};
pub use session::{CacheStats, DrainStats, Session, Ticket};

/// Compile-time thread-safety contract for the concurrent serving core.
///
/// The shared device handle and everything that crosses a worker-thread
/// boundary with it must stay [`Send`] + [`Sync`]: N OS threads hold one
/// `Arc<FlashCosmosDevice>` and call `submit_async`/`drain`/`wait`
/// concurrently. A future `Rc`/`RefCell`/raw-pointer regression anywhere
/// in the state these types own must fail *this build*, not a stress
/// test three PRs later.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    fn assert_send_sync<T: Send + Sync>() {}

    // The shared handle itself, bare and behind the Arc workers clone.
    assert_send_sync::<FlashCosmosDevice>();
    assert_send_sync::<std::sync::Arc<FlashCosmosDevice>>();
    // The session (reachable through `FlashCosmosDevice::session` from
    // any thread) and the ticket protocol's currency.
    assert_send_sync::<Session>();
    assert_send_sync::<Ticket>();
    // Batch types cross the boundary in both directions: built on worker
    // threads, results handed back through `wait`.
    assert_send_sync::<QueryBatch>();
    assert_send_sync::<BatchResults>();
    assert_send_sync::<BatchStats>();
    assert_send_sync::<DrainStats>();
    assert_send_sync::<FcError>();
    // Installable policies travel into the locked core.
    assert_send::<Box<dyn PlacementPolicy>>();
    assert_send::<Box<dyn RegroupPolicy>>();
    assert_send::<Box<dyn CacheAdmission>>();
    assert_send::<Box<dyn ScrubPolicy>>();
    assert_sync::<Box<dyn ScrubPolicy>>();
};
