//! The end-to-end Flash-Cosmos device: the `fc_write` / `fc_read` library
//! interface of §6.3 on top of the functional SSD.
//!
//! * [`FlashCosmosDevice::fc_write`] stores an operand vector for in-flash
//!   computation: striped across planes, co-located with its *placement
//!   group* (operands that will be combined by intra-block MWS), optionally
//!   inverted (§6.1), always ESP-programmed without randomization or ECC.
//! * [`FlashCosmosDevice::fc_read`] takes a bitwise [`Expr`] over stored
//!   operands, compiles one MWS program per plane-stripe, executes it on
//!   the owning chips, and assembles the result vector.
//! * [`FlashCosmosDevice::parabit_read`] runs the same expression through
//!   the ParaBit baseline compiler for comparison.
//!
//! ## Die-aware placement
//!
//! Distinct placement groups spread across **dies**: each group's block
//! is pinned to a base plane chosen die-first by block pressure (least
//! loaded, rotating across dies on ties), and a multi-page operand's
//! stripe slots rotate across dies so one vector's stripes sense in
//! parallel. Within a group the co-residency invariant holds — every
//! operand of a (group, stripe-slot) pair shares one block, overflow
//! blocks stay on the group's plane — so intra-block MWS still combines
//! any subset in one sense. Two escape hatches on [`StoreHints`]:
//!
//! * [`StoreHints::colocated`] names a *plane-colocation domain* — groups
//!   sharing a domain land on the same plane so the planner can fuse
//!   them into inter-block MWS commands (Eq. 1 / Fig. 16);
//! * [`StoreHints::with_die`] pins a group to one die (all stripe slots
//!   stay on that die, rotating its planes).
//!
//! A query whose operands end up on several dies still executes: the
//! batch compiler splits it into per-die programs and merges the partial
//! pages in the controller (see [`crate::crossdie`]).

use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use fc_bits::BitVec;
use fc_nand::command::Command;
use fc_nand::error::NandError;
use fc_nand::ispp::ProgramScheme;
use fc_ssd::device::{wl_addr, DeviceError, SsdDevice, WriteOptions};
use fc_ssd::ftl::GroupKey;
use fc_ssd::pipeline::{DieQueues, SharedDieQueues};
use fc_ssd::topology::{DieId, PlaneId};
use fc_ssd::SsdConfig;

use crate::crossdie;
use crate::expr::{Expr, OperandId};
use crate::maintenance::{
    MaintenanceConfig, PlacementPolicy, PlacementQuery, RegroupPolicy, SpreadPlacement,
};
use crate::parabit;
use crate::planner::{PlacementMap, PlanError};

/// Handle to a stored operand vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandHandle {
    /// The operand id to use in expressions.
    pub id: OperandId,
}

/// How to store an operand (the application-level choices of §6.3).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreHints {
    /// Placement group: operands sharing a group land in the same blocks,
    /// stripe by stripe, so intra-block MWS can combine them.
    pub group: String,
    /// Store the inverse of the data (turns OR over the group into a
    /// single intra-block inverse MWS, §6.1).
    pub inverted: bool,
    /// Explicit die affinity (flat die index): the group's blocks stay on
    /// this die across all stripe slots. `None` (default) lets the device
    /// spread groups across dies.
    pub die: Option<usize>,
    /// Plane-colocation domain: groups naming the same domain share a
    /// plane (and its stripe rotation), so inter-block MWS can fuse
    /// across their blocks — use it for groups one expression combines
    /// (Eq. 1 / Fig. 16). `None` (default) spreads groups across dies.
    pub colocate: Option<String>,
    /// Programming scheme override. `None` (default) keeps the ESP
    /// computation path. A single-bit scheme ([`ProgramScheme::Slc`] /
    /// [`ProgramScheme::Esp`]) trades program latency against V_TH margin
    /// per operand; multi-bit schemes ([`ProgramScheme::Mlc`] /
    /// [`ProgramScheme::Tlc`]) are only valid through
    /// [`FlashCosmosDevice::fc_write_ml`], which packs 2–3 operands per
    /// physical page.
    pub scheme: Option<ProgramScheme>,
}

impl StoreHints {
    /// Operands that will be AND-ed together.
    pub fn and_group(name: &str) -> Self {
        Self { group: name.to_string(), inverted: false, die: None, colocate: None, scheme: None }
    }

    /// Operands that will be OR-ed together (stored inverted, §6.1).
    pub fn or_group(name: &str) -> Self {
        Self { group: name.to_string(), inverted: true, die: None, colocate: None, scheme: None }
    }

    /// Pins the placement group to one die (all stripe slots stay on it).
    #[must_use]
    pub fn with_die(mut self, die: usize) -> Self {
        self.die = Some(die);
        self
    }

    /// Joins a plane-colocation domain so this group can fuse with the
    /// domain's other groups in one inter-block MWS. If the domain was
    /// created by an earlier write, its plane (and any die pin) wins.
    #[must_use]
    pub fn colocated(mut self, domain: &str) -> Self {
        self.colocate = Some(domain.to_string());
        self
    }

    /// Overrides the programming scheme (density/latency/margin choice,
    /// §6.3 — see [`StoreHints::scheme`]).
    #[must_use]
    pub fn with_scheme(mut self, scheme: ProgramScheme) -> Self {
        self.scheme = Some(scheme);
        self
    }
}

/// The unified error of the device API: every failure of the `fc_write` /
/// `fc_read` / `submit` surface is an `FcError`, wrapping the SSD, chip
/// and planner error types with full [`std::error::Error::source`]
/// chains.
#[derive(Debug)]
#[non_exhaustive]
pub enum FcError {
    /// Propagated SSD/chip error.
    Device(DeviceError),
    /// Planner failure (often fixable by different store hints).
    Plan(PlanError),
    /// Operands referenced by the expression have different sizes.
    SizeMismatch,
    /// The expression references an unknown operand id.
    UnknownOperand(OperandId),
    /// An operation named an operand that was never written.
    UnknownName(String),
    /// A store hint pinned a die the SSD does not have.
    DieOutOfRange {
        /// The requested flat die index.
        die: usize,
        /// Dies in the SSD.
        dies: usize,
    },
    /// An operand name was written twice.
    DuplicateName(String),
    /// A batched submission supplied the wrong number of output buffers.
    OutputSlots {
        /// Buffers supplied.
        got: usize,
        /// Queries in the batch.
        expected: usize,
    },
    /// A ticket was waited on twice (or belongs to another device).
    UnknownTicket(u64),
    /// The bounded async admission queue is full: the submitter is
    /// outrunning the drain side. Back off and retry (or drain) — the
    /// queue never grows without limit. See
    /// [`FlashCosmosDevice::submit_async`]'s backpressure contract.
    Overloaded {
        /// Batches already queued (= the configured admission capacity).
        queued: usize,
    },
    /// One query of a batch could not be answered correctly: a page it
    /// depends on stayed unreadable after every recovery tier. Other
    /// queries of the same batch are unaffected (per-query failure
    /// isolation; [`crate::batch::BatchResults::failures`] carries the
    /// same facts for the partial-result path).
    QueryFailed {
        /// Index of the failed query within its batch.
        query: usize,
        /// The logical page that stayed unreadable.
        lpn: u64,
        /// Recovery tiers attempted before giving up (1 = retry ladder,
        /// 2 = + parity rebuild).
        tiers_tried: u32,
    },
}

impl std::fmt::Display for FcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FcError::Device(e) => write!(f, "device: {e}"),
            FcError::Plan(e) => write!(f, "planner: {e}"),
            FcError::SizeMismatch => write!(f, "operand vectors have different lengths"),
            FcError::UnknownOperand(id) => write!(f, "unknown operand v{id}"),
            FcError::UnknownName(n) => write!(f, "no operand named {n:?}"),
            FcError::DieOutOfRange { die, dies } => {
                write!(f, "die affinity {die} out of range (SSD has {dies} dies)")
            }
            FcError::DuplicateName(n) => write!(f, "operand name {n:?} already stored"),
            FcError::OutputSlots { got, expected } => {
                write!(f, "batch of {expected} queries given {got} output buffers")
            }
            FcError::UnknownTicket(seq) => {
                write!(f, "ticket #{seq} has no queued or retired batch (already waited on?)")
            }
            FcError::Overloaded { queued } => {
                write!(
                    f,
                    "admission queue full ({queued} batches queued); drain or retry after backoff"
                )
            }
            FcError::QueryFailed { query, lpn, tiers_tried } => {
                write!(
                    f,
                    "query #{query} failed: logical page {lpn} unreadable after \
                     {tiers_tried} recovery tier(s)"
                )
            }
        }
    }
}

impl std::error::Error for FcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FcError::Device(e) => Some(e),
            FcError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for FcError {
    fn from(e: DeviceError) -> Self {
        FcError::Device(e)
    }
}

impl From<PlanError> for FcError {
    fn from(e: PlanError) -> Self {
        FcError::Plan(e)
    }
}

/// Execution statistics of one `fc_read` (per the §8 cost metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReadStats {
    /// Total sensing operations across all plane-stripes.
    pub senses: u64,
    /// Sum of chip op latencies across stripes, µs (stripes execute on
    /// different planes in parallel; this is the serial-equivalent cost).
    pub chip_time_us: f64,
    /// Critical path under die parallelism: the busiest die's total
    /// latency, µs.
    pub critical_path_us: f64,
    /// NAND energy, µJ.
    pub energy_uj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct OperandRecord {
    /// The registered name (maintenance jobs migrate by name).
    pub(crate) name: String,
    pub(crate) bits: usize,
    pub(crate) lpns: Vec<u64>,
    /// Plane of each stripe page (slot-indexed) — cached from the FTL so
    /// the die splitter resolves placement with an array lookup on the
    /// hot compile path.
    pub(crate) planes: Vec<PlaneId>,
    /// Die of each stripe page (slot-indexed) — the placement layout,
    /// surfaced so tests and benches can assert die spreading.
    pub(crate) dies: Vec<DieId>,
    pub(crate) group_index: u64,
    /// Placement generation: bumped by every mutation of the operand's
    /// data or placement (`fc_overwrite`, `migrate_operand`), so result-
    /// cache entries and queued async work stamped with an older
    /// generation can never be served stale (see
    /// [`crate::session`]).
    pub(crate) generation: u64,
    /// Multi-level operand ([`FlashCosmosDevice::fc_write_ml`]): its pages
    /// are Gray-coded cell levels, not raw SLC bits, so it cannot join an
    /// MWS sense, be overwritten in place, or migrate — queries touching
    /// it read pages through the controller.
    pub(crate) ml: bool,
}

/// Where a placement group's blocks live: the base plane its stripe
/// rotation starts from, and whether the caller pinned it to one die.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupPlace {
    pub(crate) base_plane: usize,
    pub(crate) pinned_die: Option<usize>,
}

/// The single-owner state of the Flash-Cosmos device: operand and
/// placement tables, the functional SSD, the maintenance/audit/recovery
/// configuration, and the epoch/generation counters.
///
/// Everything here is guarded by the `RwLock` inside
/// [`FlashCosmosDevice`]: the hot serving path (batch compile + chip
/// execution + drain phase A) runs under the **read** lock — chip-level
/// mutual exclusion comes from the per-die locks inside [`SsdDevice`]
/// and the session's own mutex shards — while structural mutations
/// (writes, migrations, maintenance, scrubbing, fault injection, the
/// device audit) take the **write** lock.
pub(crate) struct DeviceCore {
    pub(crate) ssd: SsdDevice,
    pub(crate) operands: Vec<OperandRecord>,
    names: HashMap<String, OperandId>,
    pub(crate) groups: HashMap<String, u64>,
    group_fill: HashMap<(u64, u64), u64>,
    /// Base plane per placement group (by group index).
    pub(crate) group_place: HashMap<u64, GroupPlace>,
    /// Base plane per colocation domain (groups in a domain share it).
    pub(crate) domain_place: HashMap<String, GroupPlace>,
    /// Where fresh placement groups land (see [`crate::maintenance`]):
    /// the default [`SpreadPlacement`] rotates pressure ties across dies,
    /// [`crate::maintenance::WearAwarePlacement`] levels P/E wear.
    placement_policy: Box<dyn PlacementPolicy>,
    /// Which hot co-queried operand sets the maintenance planner gathers.
    pub(crate) regroup_policy: Box<dyn RegroupPolicy>,
    /// Maintenance tuning (heat thresholds, slack budget).
    pub(crate) maintenance_cfg: MaintenanceConfig,
    /// Ruleset of the static analyzer (see [`crate::audit`]): what the
    /// debug-build plan-lint and device-audit hooks do per lint code.
    pub(crate) audit_cfg: crate::audit::AuditConfig,
    pub(crate) next_lpn: u64,
    /// Async submission queues + cross-batch result cache (see
    /// [`crate::session`]). Shared with the [`FlashCosmosDevice`]
    /// wrapper so tickets can park on the session's condvars without
    /// holding the device lock.
    pub(crate) session: Arc<crate::session::Session>,
    /// Device-lifetime per-die occupancy, mutex-sharded per die so
    /// concurrent drains account their queue time without a global lock.
    pub(crate) die_load: SharedDieQueues,
    /// Reliability state: parity stripes, scrub queue, fault bookkeeping
    /// and recovery counters (see [`crate::recovery`]).
    pub(crate) recovery: crate::recovery::RecoveryState,
    /// Device epoch: bumped by any hazard the per-operand generations
    /// cannot see (raw [`Self::ssd_mut`] access — reliability-mode
    /// changes, fault injection, erases). Part of every result-cache key,
    /// so an epoch bump structurally invalidates all cached results and
    /// queued compiled work.
    pub(crate) epoch: u64,
    /// Monotonic source of placement generations — never reused, even
    /// across operands, so a (operand, generation) pair identifies one
    /// immutable snapshot of that operand's data and placement.
    generation_counter: u64,
}

impl std::fmt::Debug for DeviceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceCore")
            .field("operands", &self.operands.len())
            .field("config", self.ssd.config())
            .finish_non_exhaustive()
    }
}

impl DeviceCore {
    fn over(ssd: SsdDevice) -> Self {
        assert!(
            ssd.config().total_planes().is_power_of_two(),
            "plane count must be a power of two"
        );
        let dies = ssd.config().total_dies();
        Self {
            ssd,
            operands: Vec::new(),
            names: HashMap::new(),
            groups: HashMap::new(),
            group_fill: HashMap::new(),
            group_place: HashMap::new(),
            domain_place: HashMap::new(),
            placement_policy: Box::new(SpreadPlacement::new()),
            regroup_policy: Box::new(crate::maintenance::HotSetRegrouper),
            maintenance_cfg: MaintenanceConfig::default(),
            audit_cfg: crate::audit::AuditConfig::default(),
            next_lpn: 0,
            session: Arc::new(crate::session::Session::default()),
            die_load: SharedDieQueues::new(dies),
            recovery: crate::recovery::RecoveryState::default(),
            epoch: 0,
            generation_counter: 0,
        }
    }

    /// The underlying SSD, mutably (inspection / fault injection /
    /// reliability-mode changes in tests and studies).
    ///
    /// Raw mutable access can change anything the result cache depends on
    /// (retention age, block wear, even stored bits), so taking it bumps
    /// the device epoch: every cached result and queued async compilation
    /// is structurally invalidated — same hazard discipline as the
    /// per-operand generations, applied to mutations the device cannot
    /// itemize.
    pub fn ssd_mut(&mut self) -> &mut SsdDevice {
        self.bump_epoch();
        &mut self.ssd
    }

    /// Bumps the device epoch, invalidating the result cache and any
    /// compiled-but-not-drained async batches.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.session.cache().clear();
    }

    /// The placement generation of an operand (0 for ids never written —
    /// unknown operands fail query validation before generations matter).
    pub(crate) fn operand_generation(&self, id: OperandId) -> u64 {
        self.operands.get(id).map_or(0, |r| r.generation)
    }

    /// Stamps a fresh, never-reused generation on an operand after a data
    /// or placement mutation.
    pub(crate) fn bump_generation(&mut self, id: OperandId) {
        self.generation_counter += 1;
        self.operands[id].generation = self.generation_counter;
    }

    /// Allocates a fresh logical page number. Operand pages, durable
    /// records, parity pages and rebuild rewrites all share one LPN
    /// space, so recovery can reason about any page uniformly.
    pub(crate) fn alloc_lpn(&mut self) -> u64 {
        let lpn = self.next_lpn;
        self.next_lpn += 1;
        lpn
    }

    /// The SSD configuration.
    pub fn config(&self) -> &SsdConfig {
        self.ssd.config()
    }

    /// Looks up an operand written earlier by name.
    pub fn operand(&self, name: &str) -> Option<OperandHandle> {
        self.names.get(name).map(|&id| OperandHandle { id })
    }

    /// Resolves (creating on first sight) the index and plane placement
    /// of the named placement group. New groups spread across dies; a
    /// colocation domain or die pin on the hints overrides the spread.
    ///
    /// Die pins are validated *before* anything is cached, so a rejected
    /// hint never poisons the group or its colocation domain.
    fn group_placement(&mut self, hints: &StoreHints) -> Result<(u64, GroupPlace), FcError> {
        if let Some(d) = hints.die {
            let dies = self.ssd.config().total_dies();
            if d >= dies {
                return Err(FcError::DieOutOfRange { die: d, dies });
            }
        }
        let next_index = self.groups.len() as u64;
        let group_index = *self.groups.entry(hints.group.clone()).or_insert(next_index);
        if let Some(place) = self.group_place.get(&group_index) {
            return Ok((group_index, *place));
        }
        let place = match &hints.colocate {
            Some(domain) => match self.domain_place.get(domain) {
                Some(p) => *p,
                None => {
                    let p = GroupPlace {
                        base_plane: self.choose_plane(hints.die),
                        pinned_die: hints.die,
                    };
                    self.domain_place.insert(domain.clone(), p);
                    p
                }
            },
            None => GroupPlace { base_plane: self.choose_plane(hints.die), pinned_die: hints.die },
        };
        self.group_place.insert(group_index, place);
        Ok((group_index, place))
    }

    /// Picks the base plane for a fresh group by consulting the installed
    /// [`PlacementPolicy`] with a snapshot of the FTL's block pressures
    /// and the chips' per-block wear. A die pin (validated by
    /// [`Self::group_placement`]) restricts the choice to that die's
    /// planes.
    fn choose_plane(&mut self, die: Option<usize>) -> usize {
        let query = self.placement_query(self.placement_policy.needs_wear());
        self.placement_policy.choose_plane(&query, die)
    }

    /// Snapshots the placement facts policies decide from: per-plane
    /// block pressure, plus summed per-block P/E cycles when asked
    /// (`with_wear`) — the wear scan touches every block's counter, so
    /// callers whose policy ignores wear skip it.
    pub(crate) fn placement_query(&self, with_wear: bool) -> PlacementQuery {
        let cfg = self.ssd.config();
        PlacementQuery {
            pressures: self.ssd.plane_pressures(),
            wear: if with_wear { self.plane_wear() } else { vec![0; cfg.total_planes()] },
            planes_per_die: cfg.planes_per_die,
            dies: cfg.total_dies(),
            dies_per_channel: cfg.dies_per_channel,
        }
    }

    /// Summed per-block P/E-cycle counts per flat plane — the wear signal
    /// [`crate::maintenance::WearAwarePlacement`] and the regrouping
    /// planner's target-die selection consume.
    pub fn plane_wear(&self) -> Vec<u64> {
        let cfg = self.ssd.config();
        (0..cfg.total_planes())
            .map(|plane| {
                let pid = PlaneId::from_flat(plane, cfg);
                let chip = self.ssd.chip(pid.die);
                (0..cfg.blocks_per_plane as u32)
                    .map(|b| {
                        chip.block_pec(fc_nand::geometry::BlockAddr::new(pid.plane, b))
                            .map_or(0, u64::from)
                    })
                    .sum()
            })
            .collect()
    }

    /// Installs a placement policy for fresh groups and colocation
    /// domains (existing placements are unaffected). See
    /// [`crate::maintenance`] for the provided policies.
    pub fn set_placement_policy(&mut self, policy: Box<dyn PlacementPolicy>) {
        self.placement_policy = policy;
    }

    /// Installs a regrouping policy for the maintenance planner.
    pub fn set_regroup_policy(&mut self, policy: Box<dyn RegroupPolicy>) {
        self.regroup_policy = policy;
    }

    /// Replaces the maintenance tuning (heat thresholds, slack budget).
    pub fn set_maintenance_config(&mut self, cfg: MaintenanceConfig) {
        self.maintenance_cfg = cfg;
    }

    /// Replaces the static analyzer's ruleset (see [`crate::audit`]):
    /// the default mode and any per-code overrides the debug-build
    /// plan-lint and device-audit hooks apply.
    pub fn set_audit_config(&mut self, cfg: crate::audit::AuditConfig) {
        self.audit_cfg = cfg;
    }

    /// The static analyzer's current ruleset.
    pub fn audit_config(&self) -> &crate::audit::AuditConfig {
        &self.audit_cfg
    }

    /// The current maintenance tuning.
    pub fn maintenance_config(&self) -> &MaintenanceConfig {
        &self.maintenance_cfg
    }

    /// The plane a group's stripe slot lives on. Unpinned groups rotate
    /// dies slot by slot in channel-first order — consecutive stripes of
    /// one vector hop channel buses before doubling up within one, so
    /// parallel stripe senses also stream out in parallel; pinned groups
    /// rotate the pinned die's planes instead.
    fn plane_for_slot(&self, place: GroupPlace, slot: u64) -> usize {
        let cfg = self.ssd.config();
        let ppd = cfg.planes_per_die;
        let base_die = place.base_plane / ppd;
        let base_pid = place.base_plane % ppd;
        if place.pinned_die.is_some() {
            base_die * ppd + (base_pid + slot as usize) % ppd
        } else {
            let q = self.placement_query_geometry();
            let step = q.channel_first_step(base_die) + slot as usize;
            q.channel_first_die(step) * ppd + base_pid
        }
    }

    /// A [`PlacementQuery`] carrying only the geometry (no pressure or
    /// wear snapshot) — for the channel-first die-order helpers.
    fn placement_query_geometry(&self) -> PlacementQuery {
        let cfg = self.ssd.config();
        PlacementQuery {
            pressures: Vec::new(),
            wear: Vec::new(),
            planes_per_die: cfg.planes_per_die,
            dies: cfg.total_dies(),
            dies_per_channel: cfg.dies_per_channel,
        }
    }

    /// Stores an operand vector for in-flash computation.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names or SSD allocation/programming errors.
    pub fn fc_write(
        &mut self,
        name: &str,
        data: &BitVec,
        hints: StoreHints,
    ) -> Result<OperandHandle, FcError> {
        if self.names.contains_key(name) {
            return Err(FcError::DuplicateName(name.to_string()));
        }
        if hints.scheme.is_some_and(|s| s.cell_mode().bits_per_cell() > 1) {
            return Err(FcError::Device(DeviceError::Nand(NandError::InvalidMlsense(
                "multi-bit schemes pack several operands per page; use fc_write_ml".to_string(),
            ))));
        }
        let (group_index, place) = self.group_placement(&hints)?;
        let page_bits = self.ssd.config().page_bits();
        let pages = data.len().div_ceil(page_bits).max(1);
        let mut lpns = Vec::with_capacity(pages);
        let mut planes = Vec::with_capacity(pages);
        let mut dies = Vec::with_capacity(pages);
        for slot in 0..pages as u64 {
            // One FTL group per (named group, stripe slot, overflow id):
            // the overflow id moves to a fresh block — on the same plane,
            // preserving co-residency — once a block's wordlines are
            // exhausted (> `wls_per_block` operands per group).
            let fill = self.group_fill.entry((group_index, slot)).or_insert(0);
            let wls = self.ssd.config().wls_per_block as u64;
            let overflow = *fill / wls;
            *fill += 1;
            let key = GroupKey { group: group_index, slot, overflow };
            let plane = self.plane_for_slot(place, slot);
            let start = (slot as usize) * page_bits;
            let len = page_bits.min(data.len().saturating_sub(start));
            let mut page = BitVec::zeros(page_bits);
            if len > 0 {
                page.copy_from(0, &data.slice(start, len));
            }
            let lpn = self.next_lpn;
            self.next_lpn += 1;
            let mut opts = WriteOptions::flash_cosmos(key, Some(plane), hints.inverted);
            if let Some(scheme) = hints.scheme {
                opts.meta.scheme = scheme;
            }
            let ppa = self.ssd.write(lpn, &page, opts)?;
            lpns.push(lpn);
            planes.push(ppa.plane);
            dies.push(ppa.plane.die);
        }
        let id = self.operands.len();
        self.generation_counter += 1;
        self.operands.push(OperandRecord {
            name: name.to_string(),
            bits: data.len(),
            lpns,
            planes,
            dies,
            group_index,
            generation: self.generation_counter,
            ml: false,
        });
        self.names.insert(name.to_string(), id);
        let member_lpns = self.operands[id].lpns.clone();
        self.parity_protect_lpns(&member_lpns)?;
        Ok(OperandHandle { id })
    }

    /// Stores 2–3 operand vectors **multi-level**: each stripe slot packs
    /// all of them onto one physical wordline as MLC/TLC cell levels
    /// (`names[b]` on Gray-code page `b`), so the group costs one
    /// wordline where SLC storage costs two or three — the §6.3 density
    /// choice, surfaced per operand set.
    ///
    /// The trade: ML operands are **storage, not compute** — their pages
    /// are cell levels, not raw SLC bits, so an expression touching them
    /// reads the pages through the controller (2–4 senses per MLC/TLC
    /// page read) and evaluates there instead of fusing into an MWS
    /// sense. They also cannot be overwritten in place or migrated.
    ///
    /// ## Protection contract
    ///
    /// Multi-level pages sit **outside every recovery tier beyond the
    /// read-retry ladder**: they join no cross-die parity stripe (parity
    /// rebuilds XOR raw SLC payloads, which an ML page does not have) and
    /// the retention scrubber skips them (a refresh would have to rewrite
    /// the whole Gray-packed wordline, invalidating the co-stored
    /// aliases). A lost ML page is therefore unrecoverable: every query
    /// touching it fails with [`FcError::QueryFailed`]. Callers choosing
    /// the density side of the §6.3 trade accept this exposure for the
    /// packed operands; keep anything that must survive die loss in
    /// SLC/ESP storage (`fc_write`) with parity enabled. When parity is
    /// enabled and ML operands exist, [`FlashCosmosDevice::audit`]
    /// reports the gap as the warn-level finding `FC104` — an honest
    /// flag, not an error, because the gap is this documented contract.
    ///
    /// `hints.scheme` picks the density ([`ProgramScheme::Mlc`] for 2
    /// operands, [`ProgramScheme::Tlc`] for 3); `None` infers it from
    /// `names.len()`.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, operand-count/scheme mismatches
    /// ([`NandError::InvalidMlsense`]), size mismatches between the
    /// vectors, or SSD errors.
    pub fn fc_write_ml(
        &mut self,
        names: &[&str],
        datas: &[&BitVec],
        hints: StoreHints,
    ) -> Result<Vec<OperandHandle>, FcError> {
        let scheme = hints.scheme.unwrap_or(match names.len() {
            2 => ProgramScheme::Mlc,
            _ => ProgramScheme::Tlc,
        });
        let bpc = scheme.cell_mode().bits_per_cell() as usize;
        if bpc < 2 || names.len() != bpc || datas.len() != bpc {
            return Err(FcError::Device(DeviceError::Nand(NandError::InvalidMlsense(format!(
                "multi-level write needs a multi-bit scheme with exactly bits-per-cell \
                 operands (scheme {scheme:?}, {} names, {} vectors)",
                names.len(),
                datas.len()
            )))));
        }
        for name in names {
            if self.names.contains_key(*name) {
                return Err(FcError::DuplicateName((*name).to_string()));
            }
        }
        let bits = datas[0].len();
        if datas.iter().any(|d| d.len() != bits) {
            return Err(FcError::SizeMismatch);
        }
        let (group_index, place) = self.group_placement(&hints)?;
        let page_bits = self.ssd.config().page_bits();
        let pages = bits.div_ceil(page_bits).max(1);
        let mut lpns: Vec<Vec<u64>> = vec![Vec::with_capacity(pages); bpc];
        let mut planes = Vec::with_capacity(pages);
        let mut dies = Vec::with_capacity(pages);
        for slot in 0..pages as u64 {
            let fill = self.group_fill.entry((group_index, slot)).or_insert(0);
            let wls = self.ssd.config().wls_per_block as u64;
            let overflow = *fill / wls;
            *fill += 1;
            let key = GroupKey { group: group_index, slot, overflow };
            let plane = self.plane_for_slot(place, slot);
            let start = (slot as usize) * page_bits;
            let len = page_bits.min(bits.saturating_sub(start));
            let mut slot_lpns = Vec::with_capacity(bpc);
            let mut slot_pages = Vec::with_capacity(bpc);
            for data in datas {
                let mut page = BitVec::zeros(page_bits);
                if len > 0 {
                    page.copy_from(0, &data.slice(start, len));
                }
                slot_lpns.push(self.next_lpn);
                self.next_lpn += 1;
                slot_pages.push(page);
            }
            let ppa = self.ssd.write_ml(
                &slot_lpns,
                &slot_pages,
                fc_ssd::ftl::PlacementHint::Grouped { group: key, plane: Some(plane) },
                scheme,
                hints.inverted,
            )?;
            for (b, &lpn) in slot_lpns.iter().enumerate() {
                lpns[b].push(lpn);
            }
            planes.push(ppa.plane);
            dies.push(ppa.plane.die);
        }
        let mut handles = Vec::with_capacity(bpc);
        for (name, operand_lpns) in names.iter().zip(lpns) {
            let id = self.operands.len();
            self.generation_counter += 1;
            self.operands.push(OperandRecord {
                name: (*name).to_string(),
                bits,
                lpns: operand_lpns,
                planes: planes.clone(),
                dies: dies.clone(),
                group_index,
                generation: self.generation_counter,
                ml: true,
            });
            self.names.insert((*name).to_string(), id);
            handles.push(OperandHandle { id });
        }
        Ok(handles)
    }

    /// Overwrites a stored operand's data in place (same name, same
    /// handle, same placement group and polarity): the new pages are
    /// written out-of-place into the group's blocks — flash cannot
    /// program a wordline twice — and the old pages are trimmed.
    ///
    /// The operand's placement **generation** is bumped, so every result-
    /// cache entry and queued async compilation that observed the old
    /// data is structurally invalidated (see [`crate::session`]). Queries
    /// submitted after the overwrite (and async batches drained after it)
    /// observe the new data.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownName`] if the name was never written and
    /// [`FcError::SizeMismatch`] if `data` is not the stored length
    /// (in-place overwrite keeps the operand's geometry); plus SSD
    /// allocation/programming errors.
    pub fn fc_overwrite(&mut self, name: &str, data: &BitVec) -> Result<OperandHandle, FcError> {
        let id = *self.names.get(name).ok_or_else(|| FcError::UnknownName(name.to_string()))?;
        if self.operands[id].ml {
            return Err(FcError::Device(DeviceError::Nand(NandError::InvalidMlsense(
                "multi-level operands share a wordline with their aliases and cannot be \
                 overwritten in place; rewrite the whole operand group"
                    .to_string(),
            ))));
        }
        if data.len() != self.operands[id].bits {
            return Err(FcError::SizeMismatch);
        }
        let group_index = self.operands[id].group_index;
        let place = *self
            .group_place
            .get(&group_index)
            .expect("stored operands always have a placed group");
        let inverted = self
            .ssd
            .page_meta(self.operands[id].lpns[0])
            .expect("written operands carry metadata")
            .inverted;
        let old_lpns = self.operands[id].lpns.clone();
        let page_bits = self.ssd.config().page_bits();
        let wls = self.ssd.config().wls_per_block as u64;
        let mut lpns = Vec::with_capacity(old_lpns.len());
        let mut planes = Vec::with_capacity(old_lpns.len());
        let mut dies = Vec::with_capacity(old_lpns.len());
        for slot in 0..old_lpns.len() as u64 {
            let fill = self.group_fill.entry((group_index, slot)).or_insert(0);
            let overflow = *fill / wls;
            *fill += 1;
            let key = GroupKey { group: group_index, slot, overflow };
            let plane = self.plane_for_slot(place, slot);
            let start = (slot as usize) * page_bits;
            let len = page_bits.min(data.len().saturating_sub(start));
            let mut page = BitVec::zeros(page_bits);
            if len > 0 {
                page.copy_from(0, &data.slice(start, len));
            }
            let lpn = self.next_lpn;
            self.next_lpn += 1;
            let ppa = self.ssd.write(
                lpn,
                &page,
                WriteOptions::flash_cosmos(key, Some(plane), inverted),
            )?;
            lpns.push(lpn);
            planes.push(ppa.plane);
            dies.push(ppa.plane.die);
        }
        self.parity_unprotect_lpns(&old_lpns);
        for &lpn in &old_lpns {
            self.ssd.trim(lpn);
        }
        let new_lpns = lpns.clone();
        let rec = &mut self.operands[id];
        rec.lpns = lpns;
        rec.planes = planes;
        rec.dies = dies;
        self.bump_generation(id);
        self.parity_protect_lpns(&new_lpns)?;
        Ok(OperandHandle { id })
    }

    /// Executes a bulk bitwise expression in-flash with Flash-Cosmos and
    /// returns the result vector plus execution statistics.
    ///
    /// This is a thin wrapper over the batched
    /// [`submit`](Self::submit) path with a single-query batch; callers
    /// with several queries in flight should batch them so the planner
    /// can amortize senses across them.
    ///
    /// # Errors
    ///
    /// Fails if operands mismatch, the planner rejects the layout, or a
    /// chip op fails.
    pub fn fc_read(&self, expr: &Expr) -> Result<(BitVec, ReadStats), FcError> {
        let mut result = BitVec::zeros(0);
        let stats = self.fc_read_into(expr, &mut result)?;
        Ok((result, stats))
    }

    /// Zero-copy variant of [`Self::fc_read`]: writes the result into
    /// `out` (resized in place), reusing its allocation across calls.
    ///
    /// # Errors
    ///
    /// Same as [`Self::fc_read`].
    pub fn fc_read_into(&self, expr: &Expr, out: &mut BitVec) -> Result<ReadStats, FcError> {
        let mut batch = crate::batch::QueryBatch::new();
        batch.push(expr.clone());
        let stats = self.submit_into(&batch, std::slice::from_mut(out))?;
        Ok(ReadStats {
            senses: stats.senses,
            chip_time_us: stats.chip_time_us,
            critical_path_us: stats.critical_path_us,
            energy_uj: stats.energy_uj,
        })
    }

    /// Executes the expression with the ParaBit baseline (serial
    /// single-wordline senses).
    ///
    /// # Errors
    ///
    /// Same as [`Self::fc_read`].
    pub fn parabit_read(&self, expr: &Expr) -> Result<(BitVec, ReadStats), FcError> {
        self.run_serial(expr)
    }

    /// The pre-batch serial path, kept for the ParaBit baseline (whose
    /// whole point is serial sensing — batching it would misrepresent
    /// the technique being compared against). Operands spanning dies run
    /// through the same die-split machinery as the batch path: per-die
    /// programs plus a controller merge, instead of silently executing
    /// every stripe on the last operand's chip.
    fn run_serial(&self, expr: &Expr) -> Result<(BitVec, ReadStats), FcError> {
        let ids: Vec<OperandId> = expr.operands().into_iter().collect();
        let first = *ids.first().ok_or(FcError::SizeMismatch)?;
        let bits = self.record(first)?.bits;
        let pages = self.record(first)?.lpns.len();
        for &id in &ids {
            let r = self.record(id)?;
            if r.bits != bits || r.lpns.len() != pages {
                return Err(FcError::SizeMismatch);
            }
        }
        let nnf = expr.to_nnf();
        let page_bits = self.ssd.config().page_bits();
        let mut result = BitVec::zeros(pages * page_bits);
        let mut stats = ReadStats::default();
        let mut die_time: HashMap<DieId, f64> = HashMap::new();
        for slot in 0..pages {
            let map = self.stripe_map(&ids, slot)?;
            let plan =
                crossdie::compile_spanning(&nnf, &|id| self.operand_plane(id, slot), &mut |sub| {
                    parabit::compile(sub, &map)
                })?;
            let mut leaves = Vec::new();
            let tree = plan.flatten(&mut leaves);
            let mut partials: Vec<Option<BitVec>> = Vec::with_capacity(leaves.len());
            for leaf in &leaves {
                let mut chip = self.ssd.chip_exec(leaf.plane.die);
                let mut latency = 0.0;
                for cmd in &leaf.program.commands {
                    let out = chip.execute(cmd.clone()).map_err(DeviceError::Nand)?;
                    latency += out.latency_us;
                    stats.energy_uj += out.energy_uj;
                }
                let mut page = chip
                    .execute(Command::ReadOut { plane: leaf.program.plane })
                    .map_err(DeviceError::Nand)?
                    .into_page()
                    .expect("read-out streams the cache latch");
                if leaf.program.controller_not {
                    page.not_assign();
                }
                stats.senses += leaf.program.sense_count() as u64;
                stats.chip_time_us += latency;
                *die_time.entry(leaf.plane.die).or_insert(0.0) += latency;
                partials.push(Some(page));
            }
            let page = crossdie::eval_merge(&tree, &mut partials);
            result.copy_from(slot * page_bits, &page);
        }
        stats.critical_path_us = die_time.values().fold(0.0, |a, &b| a.max(b));
        Ok((result.slice(0, bits), stats))
    }

    /// Builds one stripe's placement map (wordlines + polarity) from the
    /// FTL.
    pub(crate) fn stripe_map(
        &self,
        ids: &[OperandId],
        slot: usize,
    ) -> Result<PlacementMap, FcError> {
        let mut map = PlacementMap::new();
        for &id in ids {
            let lpn = self.record(id)?.lpns[slot];
            let ppa = self.ssd.translate(lpn).expect("written operands are always mapped");
            let inverted =
                self.ssd.page_meta(lpn).expect("written operands carry metadata").inverted;
            map.insert(id, wl_addr(ppa), inverted);
        }
        Ok(map)
    }

    /// The plane an operand's stripe page lives on (the die splitter's
    /// placement oracle).
    pub(crate) fn operand_plane(&self, id: OperandId, slot: usize) -> Option<PlaneId> {
        self.operands.get(id).and_then(|r| r.planes.get(slot)).copied()
    }

    pub(crate) fn record(&self, id: OperandId) -> Result<&OperandRecord, FcError> {
        self.operands.get(id).ok_or(FcError::UnknownOperand(id))
    }

    /// The placement-group index an operand landed in (for tests).
    pub fn group_index_of(&self, id: OperandId) -> Option<u64> {
        self.operands.get(id).map(|r| r.group_index)
    }

    /// The name an operand was registered under.
    pub fn operand_name(&self, id: OperandId) -> Option<&str> {
        self.operands.get(id).map(|r| r.name.as_str())
    }

    /// The index of a placement group by name, if any write or migration
    /// created it.
    pub(crate) fn group_index_by_name(&self, group: &str) -> Option<u64> {
        self.groups.get(group).copied()
    }

    /// The die a named placement group's base plane sits on, if the
    /// group has been placed. Replanned gather jobs must target this die
    /// — the FTL joins the cached group placement, wherever today's
    /// least-worn die is.
    pub(crate) fn group_base_die(&self, group: &str) -> Option<usize> {
        let index = self.groups.get(group)?;
        self.group_place.get(index).map(|p| p.base_plane / self.ssd.config().planes_per_die)
    }

    /// Whether an operand's pages are stored inverted (§6.1 polarity) —
    /// the maintenance planner only gathers polarity-uniform sets.
    pub(crate) fn operand_inverted(&self, id: OperandId) -> Option<bool> {
        let rec = self.operands.get(id)?;
        self.ssd.page_meta(*rec.lpns.first()?).map(|m| m.inverted)
    }

    /// The die of every stripe page of an operand (slot-indexed) — the
    /// placement layout, for asserting die-aware spreading in tests and
    /// benches.
    pub fn operand_dies(&self, id: OperandId) -> Option<&[DieId]> {
        self.operands.get(id).map(|r| r.dies.as_slice())
    }

    /// Migrates a stored operand to new placement hints — the §10
    /// background gathering: operands written at different times (or with
    /// the wrong polarity) move into a shared block so a later `fc_read`
    /// needs fewer MWS commands. Returns how many pages moved via the
    /// chip's copyback fast path (vs controller rewrite).
    ///
    /// # Errors
    ///
    /// Fails on unknown names ([`FcError::UnknownName`]) or SSD migration
    /// errors.
    pub fn migrate_operand(&mut self, name: &str, hints: StoreHints) -> Result<u64, FcError> {
        let id = *self.names.get(name).ok_or_else(|| FcError::UnknownName(name.to_string()))?;
        if self.operands[id].ml {
            return Err(FcError::Device(DeviceError::Nand(NandError::InvalidMlsense(
                "multi-level operands cannot migrate; rewrite the operand group".to_string(),
            ))));
        }
        let (group_index, place) = self.group_placement(&hints)?;
        let wls = self.ssd.config().wls_per_block as u64;
        let lpns = self.operands[id].lpns.clone();
        let mut copybacks = 0;
        let mut planes = Vec::with_capacity(lpns.len());
        let mut dies = Vec::with_capacity(lpns.len());
        for (slot, &lpn) in lpns.iter().enumerate() {
            let fill = self.group_fill.entry((group_index, slot as u64)).or_insert(0);
            let overflow = *fill / wls;
            *fill += 1;
            let key = GroupKey { group: group_index, slot: slot as u64, overflow };
            let plane = self.plane_for_slot(place, slot as u64);
            let meta = fc_ssd::ftl::PageMeta::flash_cosmos(hints.inverted);
            let used_copyback = self.ssd.migrate(
                lpn,
                fc_ssd::ftl::PlacementHint::Grouped { group: key, plane: Some(plane) },
                meta,
            )?;
            copybacks += u64::from(used_copyback);
            let ppa = self.ssd.translate(lpn).expect("migrated pages stay mapped");
            planes.push(ppa.plane);
            dies.push(ppa.plane.die);
        }
        self.operands[id].group_index = group_index;
        self.operands[id].planes = planes;
        self.operands[id].dies = dies;
        // Placement moved (even though the data did not): conservatively
        // retire every cached result and compiled program that referenced
        // the old wordlines — the same hazard class as the poisoned
        // placement cache, fixed structurally via generation stamping.
        self.bump_generation(id);
        // Stripe geometry followed the pages: re-chunk the parity so the
        // die-disjointness invariant holds on the new placement.
        self.parity_unprotect_lpns(&lpns);
        self.parity_protect_lpns(&lpns)?;
        Ok(copybacks)
    }
}

/// The Flash-Cosmos-enabled SSD: a concurrency-safe handle over the
/// device state.
///
/// The device is `Sync`: wrap it in an [`Arc`] and N OS threads can
/// call [`Self::submit_async`] / [`Self::drain`] / [`Self::wait`] /
/// [`Self::fc_read`] / [`Self::fc_overwrite`] concurrently. Internally
/// the serving path (compile + chip execution + drain phase A) runs
/// under a read lock — per-die chip mutexes, the FTL `RwLock` and the
/// session's mutex shards provide the fine-grained exclusion — while
/// structural mutations (writes, migrations, maintenance, scrubbing,
/// fault injection, the debug-build device audit) take the write lock.
///
/// ## Lock order
///
/// Device `RwLock` → session shards (pending → executing, retired shard
/// → executing) → FTL `RwLock` → per-die chip mutex → leaf mutexes
/// (scratch, energy). The session's condvar waits in [`Self::wait`]
/// happen **outside** the device lock, so parked waiters never starve a
/// writer.
///
/// The single-threaded API is source-compatible: `&mut self` callers
/// hit the same methods (a `&mut` coerces to `&`), and methods that
/// genuinely require exclusivity ([`Self::ssd_mut`]) still take
/// `&mut self`, bypassing the lock entirely via `get_mut`.
pub struct FlashCosmosDevice {
    /// Shared with [`DeviceCore`] so tickets park on the session's
    /// condvars without holding `inner`.
    pub(crate) session: Arc<crate::session::Session>,
    inner: RwLock<DeviceCore>,
    /// Immutable copy of the SSD geometry, readable without the lock.
    config: SsdConfig,
}

impl std::fmt::Debug for FlashCosmosDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlashCosmosDevice")
            .field("config", &self.config)
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}

impl FlashCosmosDevice {
    /// Creates a device over a fresh functional SSD.
    ///
    /// # Panics
    ///
    /// Panics if the plane count is not a power of two (the placement
    /// group encoding relies on it).
    pub fn new(config: SsdConfig) -> Self {
        Self::wrap(DeviceCore::over(SsdDevice::new(config)))
    }

    /// Creates a device with error injection enabled (reliability
    /// studies; ESP-stored operands still read back error-free).
    pub fn new_noisy(config: SsdConfig) -> Self {
        Self::wrap(DeviceCore::over(SsdDevice::new_noisy(config)))
    }

    /// Creates a device over physics-fidelity chips (per-cell threshold
    /// voltages): aged pages genuinely fail the nominal sense level and
    /// recover at shifted ones — the regime the recovery tiers (retry
    /// ladder, parity rebuild, scrubbing) are exercised in.
    pub fn new_physics(config: SsdConfig) -> Self {
        Self::wrap(DeviceCore::over(SsdDevice::new_physics(config)))
    }

    fn wrap(core: DeviceCore) -> Self {
        Self {
            session: Arc::clone(&core.session),
            config: core.config().clone(),
            inner: RwLock::new(core),
        }
    }

    /// Shared (read) access to the core — the hot serving path. A
    /// poisoned lock is recovered: every invariant the core maintains
    /// is re-checked by the audit pass, so a panicked writer cannot
    /// silently corrupt readers.
    pub(crate) fn core(&self) -> RwLockReadGuard<'_, DeviceCore> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive (write) access to the core — structural mutations.
    pub(crate) fn core_write(&self) -> RwLockWriteGuard<'_, DeviceCore> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Lock-free exclusive access through `&mut self` (single-threaded
    /// callers and in-crate tests poking fields directly).
    pub(crate) fn core_mut(&mut self) -> &mut DeviceCore {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// The underlying SSD, mutably (inspection / fault injection /
    /// reliability-mode changes in tests and studies).
    ///
    /// Raw mutable access can change anything the result cache depends on
    /// (retention age, block wear, even stored bits), so taking it bumps
    /// the device epoch: every cached result and queued async compilation
    /// is structurally invalidated — same hazard discipline as the
    /// per-operand generations, applied to mutations the device cannot
    /// itemize. Requires `&mut self`: raw SSD access is exclusive by
    /// construction and never contends with the serving path.
    pub fn ssd_mut(&mut self) -> &mut SsdDevice {
        self.core_mut().ssd_mut()
    }

    /// The SSD configuration (lock-free: geometry never changes).
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Looks up an operand written earlier by name.
    pub fn operand(&self, name: &str) -> Option<OperandHandle> {
        self.core().operand(name)
    }

    /// Summed per-block P/E-cycle counts per flat plane — the wear signal
    /// [`crate::maintenance::WearAwarePlacement`] and the regrouping
    /// planner's target-die selection consume.
    pub fn plane_wear(&self) -> Vec<u64> {
        self.core().plane_wear()
    }

    /// Installs a placement policy for fresh groups and colocation
    /// domains (existing placements are unaffected). See
    /// [`crate::maintenance`] for the provided policies.
    pub fn set_placement_policy(&mut self, policy: Box<dyn PlacementPolicy>) {
        self.core_mut().set_placement_policy(policy);
    }

    /// Installs a regrouping policy for the maintenance planner.
    pub fn set_regroup_policy(&mut self, policy: Box<dyn RegroupPolicy>) {
        self.core_mut().set_regroup_policy(policy);
    }

    /// Replaces the maintenance tuning (heat thresholds, slack budget).
    pub fn set_maintenance_config(&mut self, cfg: MaintenanceConfig) {
        self.core_mut().set_maintenance_config(cfg);
    }

    /// Replaces the static analyzer's ruleset (see [`crate::audit`]):
    /// the default mode and any per-code overrides the debug-build
    /// plan-lint and device-audit hooks apply.
    pub fn set_audit_config(&mut self, cfg: crate::audit::AuditConfig) {
        self.core_mut().set_audit_config(cfg);
    }

    /// The static analyzer's current ruleset (a snapshot — the device
    /// lock is not held once this returns).
    pub fn audit_config(&self) -> crate::audit::AuditConfig {
        self.core().audit_config().clone()
    }

    /// The current maintenance tuning (a snapshot).
    pub fn maintenance_config(&self) -> MaintenanceConfig {
        self.core().maintenance_config().clone()
    }

    /// Stores an operand vector for in-flash computation.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names or SSD allocation/programming errors.
    pub fn fc_write(
        &self,
        name: &str,
        data: &BitVec,
        hints: StoreHints,
    ) -> Result<OperandHandle, FcError> {
        self.core_write().fc_write(name, data, hints)
    }

    /// Stores 2–3 operand vectors **multi-level**: each stripe slot
    /// packs all of them onto one physical wordline as MLC/TLC cell
    /// levels — the §6.3 density choice. The trade: ML operands are
    /// storage, not compute (queries touching them read pages through
    /// the controller), they sit outside parity and scrubbing, and they
    /// cannot be overwritten in place or migrated. When parity is
    /// enabled and ML operands exist, [`Self::audit`] reports the
    /// protection gap as the warn-level finding `FC104`.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, operand-count/scheme mismatches,
    /// size mismatches between the vectors, or SSD errors.
    pub fn fc_write_ml(
        &self,
        names: &[&str],
        datas: &[&BitVec],
        hints: StoreHints,
    ) -> Result<Vec<OperandHandle>, FcError> {
        self.core_write().fc_write_ml(names, datas, hints)
    }

    /// Overwrites a stored operand's data in place (same name, same
    /// handle, same placement group and polarity). Takes the device
    /// write lock; the operand's placement generation is bumped, so
    /// cached results and queued async compilations that observed the
    /// old data are structurally invalidated — concurrent submitters
    /// racing this overwrite observe either the old or the new data,
    /// never a mix (see [`crate::session`]).
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownName`], [`FcError::SizeMismatch`], plus SSD
    /// allocation/programming errors.
    pub fn fc_overwrite(&self, name: &str, data: &BitVec) -> Result<OperandHandle, FcError> {
        self.core_write().fc_overwrite(name, data)
    }

    /// Executes a bulk bitwise expression in-flash with Flash-Cosmos and
    /// returns the result vector plus execution statistics. Runs under
    /// the shared (read) lock: concurrent readers proceed in parallel,
    /// serialized only at the per-die chip mutexes and the result-cache
    /// shard.
    ///
    /// # Errors
    ///
    /// Fails if operands mismatch, the planner rejects the layout, or a
    /// chip op fails.
    pub fn fc_read(&self, expr: &Expr) -> Result<(BitVec, ReadStats), FcError> {
        self.core().fc_read(expr)
    }

    /// Zero-copy variant of [`Self::fc_read`]: writes the result into
    /// `out` (resized in place), reusing its allocation across calls.
    ///
    /// # Errors
    ///
    /// Same as [`Self::fc_read`].
    pub fn fc_read_into(&self, expr: &Expr, out: &mut BitVec) -> Result<ReadStats, FcError> {
        self.core().fc_read_into(expr, out)
    }

    /// Executes the expression with the ParaBit baseline (serial
    /// single-wordline senses).
    ///
    /// # Errors
    ///
    /// Same as [`Self::fc_read`].
    pub fn parabit_read(&self, expr: &Expr) -> Result<(BitVec, ReadStats), FcError> {
        self.core().parabit_read(expr)
    }

    /// Migrates a stored operand to new placement hints — the §10
    /// background gathering. Returns how many pages moved via the
    /// chip's copyback fast path (vs controller rewrite).
    ///
    /// # Errors
    ///
    /// Fails on unknown names ([`FcError::UnknownName`]) or SSD migration
    /// errors.
    pub fn migrate_operand(&self, name: &str, hints: StoreHints) -> Result<u64, FcError> {
        self.core_write().migrate_operand(name, hints)
    }

    /// The placement-group index an operand landed in (for tests).
    pub fn group_index_of(&self, id: OperandId) -> Option<u64> {
        self.core().group_index_of(id)
    }

    /// The name an operand was registered under.
    pub fn operand_name(&self, id: OperandId) -> Option<String> {
        self.core().operand_name(id).map(String::from)
    }

    /// The die of every stripe page of an operand (slot-indexed) — the
    /// placement layout, for asserting die-aware spreading in tests and
    /// benches.
    pub fn operand_dies(&self, id: OperandId) -> Option<Vec<DieId>> {
        self.core().operand_dies(id).map(<[DieId]>::to_vec)
    }

    /// Device-lifetime per-die occupancy accumulated by every drain, µs
    /// by flat die id — the load-balance picture across the whole run.
    pub fn die_occupancy(&self) -> DieQueues {
        self.core().die_load.snapshot()
    }
}

/// `OperandHandle`s convert straight into leaf expressions, so handles
/// compose with the `&`/`|`/`^`/`!` operator sugar: `ha & hb | !hc`.
impl From<OperandHandle> for Expr {
    fn from(h: OperandHandle) -> Expr {
        Expr::var(h.id)
    }
}

macro_rules! handle_binop {
    ($trait:ident, $method:ident) => {
        impl std::ops::$trait for OperandHandle {
            type Output = Expr;

            fn $method(self, rhs: OperandHandle) -> Expr {
                std::ops::$trait::$method(Expr::from(self), Expr::from(rhs))
            }
        }

        impl std::ops::$trait<Expr> for OperandHandle {
            type Output = Expr;

            fn $method(self, rhs: Expr) -> Expr {
                std::ops::$trait::$method(Expr::from(self), rhs)
            }
        }

        impl std::ops::$trait<OperandHandle> for Expr {
            type Output = Expr;

            fn $method(self, rhs: OperandHandle) -> Expr {
                std::ops::$trait::$method(self, Expr::from(rhs))
            }
        }
    };
}

handle_binop!(BitAnd, bitand);
handle_binop!(BitOr, bitor);
handle_binop!(BitXor, bitxor);

impl std::ops::Not for OperandHandle {
    type Output = Expr;

    fn not(self) -> Expr {
        !Expr::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> FlashCosmosDevice {
        FlashCosmosDevice::new(SsdConfig::tiny_test())
    }

    fn vectors(n: usize, bits: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| BitVec::random(bits, &mut rng)).collect()
    }

    #[test]
    fn multi_operand_and_in_one_sense_per_stripe() {
        let dev = device();
        // 5 operands, 3 pages each (tiny page = 256 bits).
        let vs = vectors(5, 700, 1);
        let handles: Vec<OperandHandle> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap())
            .collect();
        let expr = Expr::and_vars(handles.iter().map(|h| h.id));
        let (result, stats) = dev.fc_read(&expr).unwrap();
        let expect = vs.iter().skip(1).fold(vs[0].clone(), |a, v| a.and(v));
        assert_eq!(result, expect);
        // One MWS per stripe (3 stripes), not one per operand.
        assert_eq!(stats.senses, 3);
        assert!(stats.critical_path_us <= stats.chip_time_us);
    }

    #[test]
    fn or_group_via_inverse_storage() {
        let dev = device();
        let vs = vectors(4, 300, 2);
        let handles: Vec<OperandHandle> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| dev.fc_write(&format!("op{i}"), v, StoreHints::or_group("g")).unwrap())
            .collect();
        let expr = Expr::or_vars(handles.iter().map(|h| h.id));
        let (result, stats) = dev.fc_read(&expr).unwrap();
        let expect = vs.iter().skip(1).fold(vs[0].clone(), |a, v| a.or(v));
        assert_eq!(result, expect);
        assert_eq!(stats.senses, 2, "2 stripes, one inverse MWS each");
    }

    #[test]
    fn ml_operands_pack_one_wordline_and_answer_via_controller() {
        let dev = device();
        let vs = vectors(3, 700, 21);
        let refs: Vec<&BitVec> = vs.iter().collect();
        let handles = dev.fc_write_ml(&["a", "b", "c"], &refs, StoreHints::and_group("g")).unwrap();
        assert_eq!(handles.len(), 3);
        // All three operands share the physical wordlines (TLC density:
        // one WL per stripe where SLC would burn three).
        let dies_a = dev.operand_dies(handles[0].id).unwrap().to_vec();
        assert_eq!(dev.operand_dies(handles[1].id).unwrap(), &dies_a[..]);
        let core = dev.core();
        let lpn_a = core.operands[handles[0].id].lpns[0];
        let lpn_c = core.operands[handles[2].id].lpns[0];
        assert_eq!(core.ssd.translate(lpn_a), core.ssd.translate(lpn_c));
        drop(core);
        // Expressions over ML operands evaluate in the controller,
        // bit-exactly, at the real multi-level page-read cost.
        let expr = Expr::and(vec![
            Expr::var(handles[0].id),
            Expr::or(vec![Expr::var(handles[1].id), Expr::not(Expr::var(handles[2].id))]),
        ]);
        let (result, stats) = dev.fc_read(&expr).unwrap();
        let expect = vs[0].and(&vs[1].or(&vs[2].not()));
        assert_eq!(result, expect);
        // 3 stripes × (TLC pages 0/1/2 cost 4+2+1 senses) = 21.
        assert_eq!(stats.senses, 21);
    }

    #[test]
    fn ml_operands_reject_in_place_mutation() {
        let dev = device();
        let vs = vectors(2, 256, 22);
        let refs: Vec<&BitVec> = vs.iter().collect();
        dev.fc_write_ml(&["a", "b"], &refs, StoreHints::and_group("g")).unwrap();
        assert!(matches!(
            dev.fc_overwrite("a", &vs[1]).unwrap_err(),
            FcError::Device(DeviceError::Nand(NandError::InvalidMlsense(_)))
        ));
        assert!(matches!(
            dev.migrate_operand("b", StoreHints::and_group("h")).unwrap_err(),
            FcError::Device(DeviceError::Nand(NandError::InvalidMlsense(_)))
        ));
        // Single-operand writes refuse multi-bit schemes up front.
        assert!(matches!(
            dev.fc_write("c", &vs[0], StoreHints::and_group("g").with_scheme(ProgramScheme::Mlc))
                .unwrap_err(),
            FcError::Device(DeviceError::Nand(NandError::InvalidMlsense(_)))
        ));
    }

    #[test]
    fn ml_and_slc_operands_mix_in_one_query() {
        let dev = device();
        let vs = vectors(3, 300, 23);
        let ml = dev
            .fc_write_ml(&["m0", "m1"], &[&vs[0], &vs[1]], StoreHints::and_group("mlg"))
            .unwrap();
        let s = dev.fc_write("s", &vs[2], StoreHints::and_group("slc")).unwrap();
        let expr = Expr::and(vec![Expr::var(ml[0].id), Expr::var(ml[1].id), Expr::var(s.id)]);
        let (result, stats) = dev.fc_read(&expr).unwrap();
        assert_eq!(result, vs[0].and(&vs[1]).and(&vs[2]));
        // 2 stripes × (MLC pages 0/1 cost 1+2 senses, SLC costs 1).
        assert_eq!(stats.senses, 8);
    }

    #[test]
    fn parabit_matches_fc_but_costs_more_senses() {
        let dev = device();
        let vs = vectors(6, 256, 3);
        let handles: Vec<OperandHandle> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap())
            .collect();
        let expr = Expr::and_vars(handles.iter().map(|h| h.id));
        let (fc, fc_stats) = dev.fc_read(&expr).unwrap();
        let (pb, pb_stats) = dev.parabit_read(&expr).unwrap();
        assert_eq!(fc, pb, "both techniques compute the same function");
        assert_eq!(fc_stats.senses, 1);
        assert_eq!(pb_stats.senses, 6, "ParaBit senses every operand");
        assert!(pb_stats.chip_time_us > 5.0 * fc_stats.chip_time_us);
    }

    #[test]
    fn kcs_shape_single_sense() {
        // Colocating the two groups on one plane keeps the paper's §7
        // observation: AND ∥ OR fuse into one inter-block MWS.
        let dev = device();
        let vs = vectors(4, 256, 4);
        let mut ids = Vec::new();
        for (i, v) in vs.iter().take(3).enumerate() {
            let hints = StoreHints::and_group("verts").colocated("kcs");
            ids.push(dev.fc_write(&format!("v{i}"), v, hints).unwrap().id);
        }
        let clique = dev
            .fc_write("clique", &vs[3], StoreHints::and_group("clique").colocated("kcs"))
            .unwrap()
            .id;
        assert_eq!(
            dev.operand_dies(ids[0]),
            dev.operand_dies(clique),
            "colocated groups share a plane (hence a die)"
        );
        let expr = Expr::or(vec![Expr::and_vars(ids.clone()), Expr::var(clique)]);
        let (result, stats) = dev.fc_read(&expr).unwrap();
        let expect = vs[0].and(&vs[1]).and(&vs[2]).or(&vs[3]);
        assert_eq!(result, expect);
        assert_eq!(stats.senses, 1, "AND + OR fused into one inter-block MWS");
    }

    #[test]
    fn uncolocated_groups_spread_and_still_answer_cross_die() {
        // Without a colocation domain the two groups land on different
        // dies; the query still answers exactly via the die-split path
        // (one sense per die, OR-merged in the controller) instead of
        // returning `PlanError::PlaneMismatch`.
        let dev = device();
        let vs = vectors(4, 256, 4);
        let mut ids = Vec::new();
        for (i, v) in vs.iter().take(3).enumerate() {
            ids.push(dev.fc_write(&format!("v{i}"), v, StoreHints::and_group("verts")).unwrap().id);
        }
        let clique = dev.fc_write("clique", &vs[3], StoreHints::and_group("clique")).unwrap().id;
        assert_ne!(
            dev.operand_dies(ids[0]),
            dev.operand_dies(clique),
            "distinct groups must spread across dies"
        );
        let expr = Expr::or(vec![Expr::and_vars(ids.clone()), Expr::var(clique)]);
        let (result, stats) = dev.fc_read(&expr).unwrap();
        let expect = vs[0].and(&vs[1]).and(&vs[2]).or(&vs[3]);
        assert_eq!(result, expect, "cross-die split must stay bit-exact");
        assert_eq!(stats.senses, 2, "one sense per die");
        assert!(
            stats.critical_path_us < stats.chip_time_us,
            "two dies sense concurrently: critical {} vs chip {}",
            stats.critical_path_us,
            stats.chip_time_us
        );
    }

    #[test]
    fn die_pin_keeps_all_stripes_on_one_die() {
        let dev = device();
        let vs = vectors(2, 1200, 40); // 5 stripes at 256-bit pages
        let a = dev.fc_write("a", &vs[0], StoreHints::and_group("g").with_die(2)).unwrap();
        let b = dev.fc_write("b", &vs[1], StoreHints::and_group("g").with_die(2)).unwrap();
        let cfg = SsdConfig::tiny_test();
        for h in [a, b] {
            let dies = dev.operand_dies(h.id).unwrap();
            assert_eq!(dies.len(), 5);
            assert!(dies.iter().all(|d| d.flat(&cfg) == 2), "pinned to die 2: {dies:?}");
        }
        let (result, _) = dev.fc_read(&(a & b)).unwrap();
        assert_eq!(result, vs[0].and(&vs[1]));
    }

    #[test]
    fn invalid_die_pin_is_rejected_without_poisoning_the_group() {
        let dev = device();
        let vs = vectors(1, 256, 42);
        let err = dev.fc_write("a", &vs[0], StoreHints::and_group("g").with_die(99)).unwrap_err();
        assert!(matches!(err, FcError::DieOutOfRange { die: 99, dies: 4 }), "got {err:?}");
        let err = dev
            .fc_write("b", &vs[0], StoreHints::and_group("h").with_die(4).colocated("dom"))
            .unwrap_err();
        assert!(matches!(err, FcError::DieOutOfRange { die: 4, dies: 4 }));
        // The rejected hints must not have cached a bad placement: the
        // same group and domain work fine with valid hints afterwards.
        dev.fc_write("a", &vs[0], StoreHints::and_group("g")).unwrap();
        dev.fc_write("b", &vs[0], StoreHints::and_group("h").colocated("dom")).unwrap();
    }

    #[test]
    fn unpinned_stripes_rotate_across_dies() {
        let dev = device();
        let v = vectors(1, 1200, 41).remove(0); // 5 stripes
        let h = dev.fc_write("a", &v, StoreHints::and_group("g")).unwrap();
        let cfg = SsdConfig::tiny_test();
        let dies: Vec<usize> =
            dev.operand_dies(h.id).unwrap().iter().map(|d| d.flat(&cfg)).collect();
        let distinct: std::collections::HashSet<usize> = dies.iter().copied().collect();
        assert_eq!(distinct.len(), 4, "stripes cover all 4 dies: {dies:?}");
        let (result, stats) = dev.fc_read(&Expr::var(h.id)).unwrap();
        assert_eq!(result, v);
        assert!(stats.critical_path_us < stats.chip_time_us, "stripes sense in parallel");
    }

    #[test]
    fn overflow_beyond_block_capacity_accumulates() {
        // tiny geometry: 8 wordlines per block; 12 operands overflow into
        // a second block and the planner AND-accumulates across them.
        let dev = device();
        let vs = vectors(12, 256, 5);
        let handles: Vec<OperandHandle> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap())
            .collect();
        let expr = Expr::and_vars(handles.iter().map(|h| h.id));
        let (result, stats) = dev.fc_read(&expr).unwrap();
        let expect = vs.iter().skip(1).fold(vs[0].clone(), |a, v| a.and(v));
        assert_eq!(result, expect);
        assert_eq!(stats.senses, 2, "12 operands over 8-WL blocks → 2 MWS");
    }

    #[test]
    fn xor_and_xnor_roundtrip() {
        let dev = device();
        let vs = vectors(2, 256, 6);
        let a = dev.fc_write("a", &vs[0], StoreHints::and_group("g")).unwrap().id;
        let b = dev.fc_write("b", &vs[1], StoreHints::and_group("g")).unwrap().id;
        let (x, _) = dev.fc_read(&Expr::xor(Expr::var(a), Expr::var(b))).unwrap();
        assert_eq!(x, vs[0].xor(&vs[1]));
        let (xn, _) = dev.fc_read(&Expr::xnor(Expr::var(a), Expr::var(b))).unwrap();
        assert_eq!(xn, vs[0].xor(&vs[1]).not());
    }

    #[test]
    fn nand_nor_not() {
        let dev = device();
        let vs = vectors(3, 256, 7);
        let ids: Vec<usize> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| dev.fc_write(&format!("x{i}"), v, StoreHints::and_group("g")).unwrap().id)
            .collect();
        let (nand, _) =
            dev.fc_read(&Expr::nand(ids.iter().map(|&i| Expr::var(i)).collect())).unwrap();
        assert_eq!(nand, vs[0].and(&vs[1]).and(&vs[2]).not());
        let (not, _) = dev.fc_read(&Expr::not(Expr::var(ids[0]))).unwrap();
        assert_eq!(not, vs[0].not());
        // NOR over operands in different groups (different blocks).
        let dev2 = device();
        let ids2: Vec<usize> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                dev2.fc_write(&format!("y{i}"), v, StoreHints::and_group(&format!("g{i}")))
                    .unwrap()
                    .id
            })
            .collect();
        let (nor, _) =
            dev2.fc_read(&Expr::nor(ids2.iter().map(|&i| Expr::var(i)).collect())).unwrap();
        assert_eq!(nor, vs[0].or(&vs[1]).or(&vs[2]).not());
    }

    #[test]
    fn duplicate_names_and_size_mismatch_are_rejected() {
        let dev = device();
        let vs = vectors(2, 256, 8);
        dev.fc_write("a", &vs[0], StoreHints::and_group("g")).unwrap();
        assert!(matches!(
            dev.fc_write("a", &vs[1], StoreHints::and_group("g")).unwrap_err(),
            FcError::DuplicateName(_)
        ));
        let short = BitVec::zeros(100);
        let b = dev.fc_write("b", &short, StoreHints::and_group("g")).unwrap();
        let a = dev.operand("a").unwrap();
        assert!(matches!(
            dev.fc_read(&Expr::and_vars([a.id, b.id])).unwrap_err(),
            FcError::SizeMismatch
        ));
    }

    #[test]
    fn migration_gathers_scattered_operands() {
        // Operands written into separate groups (scattered blocks) need
        // one MWS per operand-block; migrating them into a shared group
        // restores the single-sense AND (§10).
        let dev = device();
        let vs = vectors(4, 256, 20);
        let ids: Vec<usize> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                dev.fc_write(&format!("op{i}"), v, StoreHints::and_group(&format!("s{i}")))
                    .unwrap()
                    .id
            })
            .collect();
        let expr = Expr::and_vars(ids.iter().copied());
        let (_, before) = dev.fc_read(&expr).unwrap();
        assert_eq!(before.senses, 4, "scattered: one sense per block");
        let mut copybacks = 0;
        for i in 0..4 {
            copybacks +=
                dev.migrate_operand(&format!("op{i}"), StoreHints::and_group("gathered")).unwrap();
        }
        let (result, after) = dev.fc_read(&expr).unwrap();
        let expect = vs.iter().skip(1).fold(vs[0].clone(), |a, v| a.and(v));
        assert_eq!(result, expect, "migration must preserve data");
        assert_eq!(after.senses, 1, "gathered: single intra-block MWS");
        assert!(copybacks > 0, "same-polarity moves use copyback");
    }

    #[test]
    fn migrating_an_unknown_name_reports_unknown_name() {
        let dev = device();
        let err = dev.migrate_operand("nonexistent", StoreHints::and_group("g")).unwrap_err();
        match err {
            FcError::UnknownName(n) => assert_eq!(n, "nonexistent"),
            other => panic!("expected UnknownName, got {other:?}"),
        }
        // Regression: this used to surface as a bogus DuplicateName.
        assert!(!matches!(
            dev.migrate_operand("nope", StoreHints::and_group("g")).unwrap_err(),
            FcError::DuplicateName(_)
        ));
    }

    #[test]
    fn migration_with_polarity_change_rewrites() {
        // AND-group → OR-group migration flips the stored polarity, so
        // the controller rewrite path runs (copyback would copy raw bits
        // with the wrong polarity).
        let dev = device();
        let vs = vectors(3, 256, 21);
        for (i, v) in vs.iter().enumerate() {
            dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("flat")).unwrap();
        }
        let mut copybacks = 0;
        for i in 0..3 {
            copybacks +=
                dev.migrate_operand(&format!("op{i}"), StoreHints::or_group("ors")).unwrap();
        }
        assert_eq!(copybacks, 0, "polarity change forces rewrite");
        let ids = [0usize, 1, 2];
        let (result, stats) = dev.fc_read(&Expr::or_vars(ids)).unwrap();
        let expect = vs[0].or(&vs[1]).or(&vs[2]);
        assert_eq!(result, expect);
        assert_eq!(stats.senses, 1, "inverted co-located OR is one inverse MWS");
    }

    #[test]
    fn handle_operators_and_read_into() {
        let dev = device();
        let vs = vectors(3, 300, 30);
        let a = dev.fc_write("a", &vs[0], StoreHints::and_group("g")).unwrap();
        let b = dev.fc_write("b", &vs[1], StoreHints::and_group("g")).unwrap();
        let c = dev.fc_write("c", &vs[2], StoreHints::and_group("h")).unwrap();
        // Handles compose with operator sugar straight into expressions.
        let expr = a & b | c;
        let (result, _) = dev.fc_read(&expr).unwrap();
        let expect = vs[0].and(&vs[1]).or(&vs[2]);
        assert_eq!(result, expect);
        // Zero-copy output mode reuses the caller's buffer — and the
        // repeated expression is answered by the cross-batch result cache
        // (no senses), bit-identically.
        let mut out = BitVec::zeros(0);
        let stats = dev.fc_read_into(&expr, &mut out).unwrap();
        assert_eq!(out, expect);
        assert_eq!(stats.senses, 0, "identical re-read is a cache hit");
        let (x, _) = dev.fc_read(&(a ^ b)).unwrap();
        assert_eq!(x, vs[0].xor(&vs[1]));
        let (n, _) = dev.fc_read(&!a).unwrap();
        assert_eq!(n, vs[0].not());
    }

    #[test]
    fn fc_error_sources_chain() {
        use std::error::Error;
        let dev = device();
        let v = BitVec::zeros(64);
        dev.fc_write("a", &v, StoreHints::and_group("g")).unwrap();
        let plan_err = FcError::Plan(PlanError::NoPlacement(3));
        assert!(plan_err.source().is_some(), "planner errors expose a source");
        assert!(plan_err.source().unwrap().to_string().contains("v3"));
        let bare = dev.fc_read(&Expr::var(99)).unwrap_err();
        assert!(matches!(bare, FcError::UnknownOperand(99)));
        assert!(bare.source().is_none());
    }

    #[test]
    fn noisy_device_with_esp_still_exact() {
        // The paper's reliability claim end-to-end: with error injection
        // enabled and worst-case aging, ESP-stored operands still produce
        // bit-exact results.
        let dev = FlashCosmosDevice::new_noisy(SsdConfig::tiny_test());
        dev.inject_faults(&crate::recovery::FaultPlan::new().retention(12.0)).unwrap();
        let vs = vectors(4, 512, 9);
        let handles: Vec<OperandHandle> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap())
            .collect();
        let expr = Expr::and_vars(handles.iter().map(|h| h.id));
        let (result, _) = dev.fc_read(&expr).unwrap();
        let expect = vs.iter().skip(1).fold(vs[0].clone(), |a, v| a.and(v));
        assert_eq!(result, expect, "ESP keeps in-flash results error-free");
    }
}
