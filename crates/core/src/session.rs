//! Queue-first submission and the generation-stamped cross-batch result
//! cache: the device's async session layer.
//!
//! The batch API (PR 2) amortizes work *within* one submission; a
//! production front end has several batches in flight and repeats
//! predicates across them. This module adds both halves:
//!
//! * **Async ticketed submission** —
//!   [`FlashCosmosDevice::submit_async`] compiles a batch into per-die
//!   program queues *without executing anything* and returns a
//!   [`Ticket`]. [`FlashCosmosDevice::drain`] retires everything queued
//!   in one pass; [`Ticket::wait`] drains (if needed) and hands back that
//!   batch's [`BatchResults`]. Dies execute their queues independently,
//!   so two in-flight batches interleave on idle dies: the combined
//!   modeled critical path ([`DrainStats::combined_critical_path_us`],
//!   busiest die of the summed [`DieQueues`] occupancy) sits at or below
//!   the sum of the batches' standalone critical paths
//!   ([`DrainStats::serial_critical_path_us`]) — strictly below whenever
//!   the batches' busy dies differ.
//! * **Cross-batch result cache** — every plan unit is keyed by
//!   `(epoch, canonical NNF, [(operand, generation)])` and its result
//!   vector memoized at execution. A later submit (sync or async) whose
//!   unit key matches replays the memoized pages: zero senses, zero chip
//!   time, bit-identical output.
//!
//! ## Why stale results are structurally impossible
//!
//! The cache key never compares data — it compares *generations*. Every
//! mutation that could change what a compiled program senses bumps a
//! stamp the key includes:
//!
//! | hazard | stamp bumped |
//! |---|---|
//! | [`FlashCosmosDevice::fc_overwrite`] (name overwrite) | that operand's generation |
//! | [`FlashCosmosDevice::migrate_operand`] (placement move) | that operand's generation |
//! | raw [`FlashCosmosDevice::ssd_mut`] access (reliability-mode changes, wear/fault injection, erases) | the device epoch |
//!
//! A generation is drawn from a monotonic counter and never reused, so a
//! key identifies one immutable snapshot of its operands; an old entry
//! simply can never match again (PR 3's poisoned-placement-cache bug was
//! this same hazard class — here the invalidation is designed in, not
//! patched on). Queued async batches carry the same snapshot: at drain
//! time a batch whose snapshot no longer matches is **recompiled**
//! against current placement, so async queries always observe drain-time
//! data — identical to what a synchronous submit at drain time would
//! return.
//!
//! ```
//! use flash_cosmos::device::{FlashCosmosDevice, StoreHints};
//! use flash_cosmos::batch::QueryBatch;
//! use fc_ssd::SsdConfig;
//! use fc_bits::BitVec;
//!
//! let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
//! let a = dev.fc_write("a", &BitVec::ones(64), StoreHints::and_group("g")).unwrap();
//! let b = dev.fc_write("b", &BitVec::zeros(64), StoreHints::and_group("g")).unwrap();
//! let mut batch = QueryBatch::new();
//! batch.push(a & b);
//!
//! // Queue two batches, then retire them in one overlapped pass.
//! let t1 = dev.submit_async(&batch).unwrap();
//! let t2 = dev.submit_async(&batch).unwrap();
//! let drained = dev.drain().unwrap();
//! assert_eq!(drained.batches, 2);
//! let r1 = t1.wait(&dev).unwrap();
//! let r2 = t2.wait(&dev).unwrap();
//! assert_eq!(r1.results, r2.results);
//! // The second batch re-used the first one's cached unit: no senses.
//! assert_eq!(r2.stats.senses, 0);
//! assert_eq!(r2.stats.cached_units, 1);
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use fc_bits::BitVec;
use fc_ssd::pipeline::{overlap_report, DieQueues};

use crate::batch::{BatchResults, CompiledBatch, QueryBatch};
use crate::device::{FcError, FlashCosmosDevice};
use crate::expr::{Nnf, OperandId};
use crate::maintenance::{
    AffinityTracker, CacheAdmission, CacheEntryInfo, CostAwareAdmission, MaintenanceStats,
    RegroupJob, RetiredJob,
};
use crate::recovery::DeviceHealth;

/// Result-cache key: device epoch, canonical normal form, and the
/// placement generation of every referenced operand (ascending by id).
/// Key equality implies the memoized result is bit-identical to what a
/// fresh execution would produce.
pub(crate) type CacheKey = (u64, Nnf, Vec<(OperandId, u64)>);

/// One memoized unit result.
pub(crate) struct CacheEntry {
    /// The unit's full output vector (`pages × page_bits` bits).
    pub(crate) result: BitVec,
    /// Senses a cold execution of the unit runs (serial-cost accounting
    /// for hits).
    pub(crate) senses: u64,
    /// Lookups this entry has served (feeds the cost-aware admission
    /// score and the affinity tracker).
    hits: u64,
    /// Insertion sequence (monotonic; ties in admission scores degrade to
    /// FIFO on it).
    seq: u64,
}

impl CacheEntry {
    fn info(&self) -> CacheEntryInfo {
        CacheEntryInfo {
            hits: self.hits,
            senses: self.senses,
            seq: self.seq,
            bits: self.result.len(),
        }
    }
}

/// Observable cache counters (see [`Session::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries (0 = caching disabled).
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and usually led to an insert).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Inserts the admission policy refused (the fresh entry scored below
    /// every resident entry — only a non-FIFO policy ever refuses).
    pub rejections: u64,
}

/// The generation-stamped result cache. Bounded; when full, the
/// installed [`CacheAdmission`] policy picks the eviction victim (lowest
/// score, oldest on ties) and may refuse the insert outright (cost-aware
/// admission). Invalidation is purely structural — stale keys can never
/// match — so eviction is only a memory bound, never a correctness
/// mechanism.
pub(crate) struct ResultCache {
    entries: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    policy: Box<dyn CacheAdmission>,
    next_seq: u64,
    /// New-key insert attempts since creation; every
    /// [`ResultCache::decay_window`] of them halves all hit counts so
    /// frequency scores age (an LFU score without decay would let a
    /// once-hot entry squat forever after the working set shifts).
    attempts: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejections: u64,
}

/// Default bound on memoized unit results.
const DEFAULT_CACHE_CAPACITY: usize = 256;

impl Default for ResultCache {
    fn default() -> Self {
        Self {
            entries: HashMap::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            policy: Box::new(CostAwareAdmission),
            next_seq: 0,
            attempts: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            rejections: 0,
        }
    }
}

impl ResultCache {
    /// Whether inserts can possibly be served later — callers skip the
    /// result/key clones feeding [`ResultCache::insert`] when disabled.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn lookup(&mut self, key: &CacheKey) -> Option<&CacheEntry> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                self.hits += 1;
                Some(entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// New-key insert attempts between hit-count halvings: two cache
    /// turnovers' worth, so scores reflect roughly the last few
    /// working-set generations.
    fn decay_window(&self) -> u64 {
        (self.capacity as u64 * 2).max(8)
    }

    /// The resident entry with the lowest `(score, seq)` — the next
    /// eviction victim under the installed policy.
    fn victim(&self) -> Option<(&CacheKey, CacheEntryInfo)> {
        self.entries.iter().map(|(k, e)| (k, e.info())).min_by(|(_, a), (_, b)| {
            self.policy.score(a).total_cmp(&self.policy.score(b)).then_with(|| a.seq.cmp(&b.seq))
        })
    }

    /// Evicts down to `bound` entries via the policy's victim choice.
    fn evict_to(&mut self, bound: usize) {
        while self.entries.len() > bound {
            let key = self.victim().map(|(k, _)| k.clone()).expect("non-empty while over bound");
            self.entries.remove(&key);
            self.evictions += 1;
        }
    }

    pub(crate) fn insert(&mut self, key: CacheKey, result: BitVec, senses: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(existing) = self.entries.get_mut(&key) {
            // Same key re-inserted (e.g. capacity was toggled): refresh
            // the payload, keep the entry's history.
            existing.result = result;
            existing.senses = senses;
            return;
        }
        // Frequency aging: halve every resident's hit count once per
        // decay window of new-key insert attempts, so hit-frequency
        // scores measure the *recent* past — a once-hot entry decays to
        // evictable after the working set shifts, while genuinely hot
        // entries re-earn their hits between halvings.
        self.attempts += 1;
        if self.attempts.is_multiple_of(self.decay_window()) {
            for entry in self.entries.values_mut() {
                entry.hits /= 2;
            }
        }
        let fresh = CacheEntryInfo { hits: 0, senses, seq: self.next_seq, bits: result.len() };
        if self.entries.len() >= self.capacity {
            let Some((victim_key, victim)) = self.victim().map(|(k, i)| (k.clone(), i)) else {
                return; // capacity 0 handled above; len >= capacity >= 1
            };
            if !self.policy.admit(&fresh, &victim) {
                self.rejections += 1;
                return;
            }
            self.entries.remove(&victim_key);
            self.evictions += 1;
        }
        self.entries.insert(key, CacheEntry { result, senses, hits: 0, seq: self.next_seq });
        self.next_seq += 1;
    }

    /// Like [`ResultCache::lookup`] but for re-checking a unit that
    /// already missed (and was counted) at compile time: a hit is
    /// counted, a still-miss is not double-counted.
    pub(crate) fn peek_hit(&mut self, key: &CacheKey) -> Option<&CacheEntry> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                self.hits += 1;
                Some(entry)
            }
            None => None,
        }
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// Resident keys, in no particular order (the device audit
    /// cross-checks every cached generation against the operand table —
    /// see `crate::audit`).
    pub(crate) fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.entries.keys()
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.evict_to(capacity);
    }

    pub(crate) fn set_policy(&mut self, policy: Box<dyn CacheAdmission>) {
        self.policy = policy;
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            rejections: self.rejections,
        }
    }
}

/// Recovers a poisoned guard: the protected state stays consistent at
/// mutation granularity (a panicked holder can leave partial *session*
/// progress, but every invariant the audit checks lives in the device
/// core under its own lock), so propagating the poison would only turn
/// one panic into many.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A batch queued by [`FlashCosmosDevice::submit_async`], waiting for a
/// drain.
pub(crate) struct PendingBatch {
    seq: u64,
    /// The source queries, kept so a stale compilation can be redone
    /// against drain-time placement.
    source: QueryBatch,
    compiled: CompiledBatch,
}

/// Handle to one async-submitted batch. Obtained from
/// [`FlashCosmosDevice::submit_async`]; redeem it with [`Ticket::wait`]
/// (or [`FlashCosmosDevice::wait`]) exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    seq: u64,
}

impl Ticket {
    /// The ticket's sequence number (diagnostics / logging).
    pub fn id(&self) -> u64 {
        self.seq
    }

    /// Retires this batch and returns its results, draining the device's
    /// queues first if it is still in flight. If another thread is
    /// already draining the batch, this parks on the session's retire
    /// condvar (without holding the device lock) until it lands.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownTicket`] when waited on twice, plus anything
    /// [`FlashCosmosDevice::drain`] can return.
    pub fn wait(self, dev: &FlashCosmosDevice) -> Result<BatchResults, FcError> {
        dev.wait(self)
    }
}

/// Statistics of one [`FlashCosmosDevice::drain`] pass over every queued
/// batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrainStats {
    /// Batches retired by this drain.
    pub batches: usize,
    /// Sensing operations executed across all retired batches.
    pub senses: u64,
    /// Modeled critical path of the combined per-die queues, µs: dies run
    /// their queues concurrently, so this is the busiest die's total
    /// across *all* drained batches.
    pub combined_critical_path_us: f64,
    /// Sum of the batches' standalone critical paths, µs — what
    /// back-to-back synchronous submits would report.
    pub serial_critical_path_us: f64,
    /// Distinct dies that executed sensing work during the drain.
    pub dies_used: usize,
    /// The busiest die's combined sense/program occupancy, µs — the
    /// die-parallel component of the combined critical path.
    pub busiest_die_us: f64,
    /// The busiest channel bus's combined output-transfer occupancy, µs.
    /// When this exceeds `busiest_die_us` the drain was transfer-bound.
    pub busiest_channel_us: f64,
    /// Total controller merge wall time across the drained batches, µs —
    /// the serial stage. Its share of the critical path is the
    /// channel-scaling saturation signal: scaling is near-linear while
    /// flash (die or channel) dominates and flattens once the merge does.
    pub merge_us: f64,
    /// Background-maintenance work this drain filled into the idle-die
    /// slack (see [`crate::maintenance`]): migrations executed within the
    /// critical-path budget, deferred jobs, retirements — plus retention
    /// scrubbing (see [`crate::recovery`]), which shares the same budget.
    pub maintenance: MaintenanceStats,
    /// Device-wide reliability counters snapshotted at the end of this
    /// drain (cumulative since device creation, not per-drain deltas).
    /// An empty drain returns [`DrainStats::default`] without snapshotting.
    pub health: DeviceHealth,
}

impl DrainStats {
    /// Critical-path time the die-overlap saved versus serial submission,
    /// µs (≥ 0).
    pub fn overlap_saved_us(&self) -> f64 {
        (self.serial_critical_path_us - self.combined_critical_path_us).max(0.0)
    }

    /// Which resource bounded this drain — the busiest die, the busiest
    /// channel bus, or the controller merge (see
    /// [`crate::batch::Bottleneck`]).
    pub fn bottleneck(&self) -> crate::batch::Bottleneck {
        use crate::batch::Bottleneck;
        if self.merge_us > self.busiest_die_us && self.merge_us > self.busiest_channel_us {
            Bottleneck::Merge
        } else if self.busiest_channel_us > self.busiest_die_us {
            Bottleneck::Channel
        } else {
            Bottleneck::Die
        }
    }

    /// The controller merge's share of the combined critical path plus
    /// merge time, in `[0, 1]` — 0 when the drain was pure flash work.
    pub fn merge_share(&self) -> f64 {
        let total = self.combined_critical_path_us + self.merge_us;
        if total <= 0.0 {
            0.0
        } else {
            self.merge_us / total
        }
    }
}

/// One parked ticket's wake channel: a condvar shared by every thread
/// waiting on the same seq, refcounted so the slot is reclaimed when the
/// last waiter leaves.
struct WaiterSlot {
    cv: Arc<Condvar>,
    waiters: usize,
}

/// One shard of the retired-results table (`seq % RETIRED_SHARDS`):
/// parked results plus the per-seq waiter registry, under one mutex.
#[derive(Default)]
struct RetiredState {
    results: HashMap<u64, BatchResults>,
    /// Seq → wake channel for threads parked in
    /// [`Session::wait_retired`]. Retire and abandon notify exactly the
    /// affected seq's condvar — **under this mutex**, so a notification
    /// can never slip between a waiter's last state check and its park.
    waiters: HashMap<u64, WaiterSlot>,
}

/// One shard of the retired-results table: a slice of the ticket space
/// with its own mutex, so waiters of different tickets park and wake
/// independently — and, within a shard, each ticket parks on its own
/// condvar (no thundering herd, no periodic recheck).
#[derive(Default)]
struct RetiredShard {
    state: Mutex<RetiredState>,
}

/// Mutex shards of the retired-results table. Eight is plenty: the
/// shard only arbitrates the brief insert/remove/park window, not
/// execution.
const RETIRED_SHARDS: usize = 8;

/// Default bound on batches queued by `submit_async` and not yet
/// claimed by a drain. See [`FlashCosmosDevice::submit_async`]'s
/// backpressure contract.
const DEFAULT_ADMISSION_CAPACITY: usize = 1024;

/// The device's session state: in-flight async batches, retired results
/// awaiting their [`Ticket::wait`], the cross-batch result cache, and
/// the maintenance layer's observations and work queue. Accessible
/// through [`FlashCosmosDevice::session`].
///
/// Every field is its own lock domain, so N threads serving traffic
/// contend only where they genuinely share state:
///
/// | shard | guards | locked by |
/// |---|---|---|
/// | `pending` | admission queue | `submit_async`, drain claim, `wait` |
/// | `executing` | claimed-but-not-retired seqs | drain claim/retire, `wait` |
/// | `shards[k]` | retired results + per-seq waiters, `seq % 8 == k` | retire, `wait` |
/// | `cache` | memoized unit results | batch compile/execute |
/// | `affinity` | co-query observations | batch compile, planner |
/// | `jobs` / `retired_jobs` | maintenance queue / log | drain phase B, planner |
///
/// Lock order within the session: `pending` → `executing`, and
/// `shards[k].state` → `executing`. Nothing holds two of {cache,
/// affinity, jobs} at once.
pub struct Session {
    cache: Mutex<ResultCache>,
    /// Which operand sets get fused together, and what they cost — the
    /// regrouping planner's input (fed by every batch compile).
    affinity: Mutex<AffinityTracker>,
    pending: Mutex<Vec<PendingBatch>>,
    /// Bound on `pending` — admission above it fails with
    /// [`FcError::Overloaded`].
    admission_capacity: AtomicUsize,
    /// Seqs a drain has claimed but not yet retired (or abandoned):
    /// `wait` parks on these instead of re-draining.
    executing: Mutex<HashSet<u64>>,
    shards: Vec<RetiredShard>,
    next_seq: AtomicU64,
    /// Planned-but-not-executed migration jobs, FIFO.
    jobs: Mutex<VecDeque<RegroupJob>>,
    /// Bounded log of jobs dropped on generation mismatch.
    retired_jobs: Mutex<VecDeque<RetiredJob>>,
    /// Total jobs ever retired (the log itself is bounded).
    jobs_retired_total: AtomicU64,
}

impl Default for Session {
    fn default() -> Self {
        Self {
            cache: Mutex::new(ResultCache::default()),
            affinity: Mutex::new(AffinityTracker::default()),
            pending: Mutex::new(Vec::new()),
            admission_capacity: AtomicUsize::new(DEFAULT_ADMISSION_CAPACITY),
            executing: Mutex::new(HashSet::new()),
            shards: (0..RETIRED_SHARDS).map(|_| RetiredShard::default()).collect(),
            next_seq: AtomicU64::new(0),
            jobs: Mutex::new(VecDeque::new()),
            retired_jobs: Mutex::new(VecDeque::new()),
            jobs_retired_total: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("in_flight", &self.in_flight())
            .field("retired", &self.retired())
            .field("cache", &self.cache_stats())
            .field("tracked_sets", &lock(&self.affinity).len())
            .field("pending_jobs", &self.pending_maintenance())
            .finish()
    }
}

impl Session {
    /// Batches queued by `submit_async` and not yet claimed by a drain.
    pub fn in_flight(&self) -> usize {
        lock(&self.pending).len()
    }

    /// Drained batches whose ticket has not been waited on yet.
    pub fn retired(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.state).results.len()).sum()
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        lock(&self.cache).stats()
    }

    /// The affinity tracker's view of co-fused operand sets. Returns a
    /// lock guard: drop it promptly — batch compilation records into the
    /// tracker on the serving path.
    pub fn affinity(&self) -> MutexGuard<'_, AffinityTracker> {
        lock(&self.affinity)
    }

    /// Planned migration jobs not yet executed.
    pub fn pending_maintenance(&self) -> usize {
        lock(&self.jobs).len()
    }

    /// The bounded log of retired (generation-mismatched) migration jobs,
    /// oldest first (a snapshot — the log can grow concurrently).
    /// Retirements beyond
    /// [`MaintenanceConfig::retired_log_capacity`] drop the oldest log
    /// entry; [`Session::jobs_retired_total`] still counts them.
    ///
    /// [`MaintenanceConfig::retired_log_capacity`]: crate::maintenance::MaintenanceConfig::retired_log_capacity
    pub fn retired_jobs(&self) -> impl Iterator<Item = RetiredJob> {
        lock(&self.retired_jobs).iter().cloned().collect::<Vec<_>>().into_iter()
    }

    /// Total migration jobs ever retired on generation mismatch.
    pub fn jobs_retired_total(&self) -> u64 {
        self.jobs_retired_total.load(Ordering::Relaxed)
    }

    /// The result cache, locked.
    pub(crate) fn cache(&self) -> MutexGuard<'_, ResultCache> {
        lock(&self.cache)
    }

    /// The maintenance job queue, locked.
    pub(crate) fn jobs(&self) -> MutexGuard<'_, VecDeque<RegroupJob>> {
        lock(&self.jobs)
    }

    /// The retired-jobs log, locked.
    pub(crate) fn retired_log(&self) -> MutexGuard<'_, VecDeque<RetiredJob>> {
        lock(&self.retired_jobs)
    }

    /// Counts one generation-mismatched job retirement.
    pub(crate) fn bump_jobs_retired(&self) {
        self.jobs_retired_total.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn admission_capacity(&self) -> usize {
        self.admission_capacity.load(Ordering::Relaxed)
    }

    pub(crate) fn set_admission_capacity(&self, capacity: usize) {
        self.admission_capacity.store(capacity, Ordering::Relaxed);
    }

    fn shard(&self, seq: u64) -> &RetiredShard {
        &self.shards[(seq % RETIRED_SHARDS as u64) as usize]
    }

    /// Admits a compiled batch into the pending queue, or refuses with
    /// [`FcError::Overloaded`] when the queue is at capacity.
    pub(crate) fn enqueue(
        &self,
        source: QueryBatch,
        compiled: CompiledBatch,
    ) -> Result<Ticket, FcError> {
        let mut pending = lock(&self.pending);
        if pending.len() >= self.admission_capacity() {
            return Err(FcError::Overloaded { queued: pending.len() });
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        pending.push(PendingBatch { seq, source, compiled });
        Ok(Ticket { seq })
    }

    /// Atomically moves the oldest pending batch into the executing set
    /// and hands it to the calling drain. Waiters observing a seq in
    /// `executing` park instead of re-draining.
    ///
    /// One batch at a time — not the whole queue — so drains racing
    /// from several threads *partition* the backlog and execute it in
    /// parallel instead of the first drain claiming everything while
    /// the rest park. Each drain loops until this returns `None`, which
    /// preserves the single-threaded contract (a drain retires every
    /// queued batch, including ones submitted while it runs).
    pub(crate) fn claim_next(&self) -> Option<PendingBatch> {
        let mut pending = lock(&self.pending);
        if pending.is_empty() {
            return None;
        }
        let pb = pending.remove(0);
        lock(&self.executing).insert(pb.seq); // order: pending → executing
        Some(pb)
    }

    pub(crate) fn is_pending(&self, seq: u64) -> bool {
        lock(&self.pending).iter().any(|p| p.seq == seq)
    }

    pub(crate) fn is_executing(&self, seq: u64) -> bool {
        lock(&self.executing).contains(&seq)
    }

    /// Parks a claimed batch's results into its retired shard and wakes
    /// exactly the waiters parked on that seq, then releases the
    /// executing claim.
    pub(crate) fn retire(&self, seq: u64, results: BatchResults) {
        let shard = self.shard(seq);
        {
            let mut state = lock(&shard.state);
            state.results.insert(seq, results);
            if let Some(slot) = state.waiters.get(&seq) {
                slot.cv.notify_all();
            }
        }
        lock(&self.executing).remove(&seq); // order: shard → executing
    }

    /// Releases executing claims whose batches will never retire (a
    /// drain hit an error mid-pass): their waiters wake and report
    /// [`FcError::UnknownTicket`], mirroring the single-threaded
    /// dropped-batch semantics. The per-seq notify happens under the
    /// shard's state lock — a waiter holds that lock from its executing
    /// check until it parks, so the wakeup cannot race past it.
    pub(crate) fn abandon(&self, seqs: &[u64]) {
        {
            let mut executing = lock(&self.executing);
            for seq in seqs {
                executing.remove(seq);
            }
        }
        for &seq in seqs {
            let state = lock(&self.shard(seq).state);
            if let Some(slot) = state.waiters.get(&seq) {
                slot.cv.notify_all();
            }
        }
    }

    /// Removes and returns a retired batch's results, if present.
    pub(crate) fn take_retired(&self, seq: u64) -> Option<BatchResults> {
        lock(&self.shard(seq).state).results.remove(&seq)
    }

    /// Blocks until a currently-executing batch retires (returning its
    /// results) or its claim is abandoned (returning `None`). The waiter
    /// registers a per-seq condvar in the shard's waiter map and parks on
    /// it — retire/abandon notify that seq alone, so unrelated tickets in
    /// the same shard neither wake this thread nor get woken by it, and
    /// no periodic recheck is needed. Missed wakeups are impossible: the
    /// executing check and the park happen under the shard state lock,
    /// the same lock retire inserts and notifies under — either the
    /// insert (or the abandon's executing removal) happened before our
    /// check, or its notify comes after we atomically release the lock
    /// into the condvar wait.
    pub(crate) fn wait_retired(&self, seq: u64) -> Option<BatchResults> {
        let shard = self.shard(seq);
        let mut state = lock(&shard.state);
        let mut registered = false;
        let outcome = loop {
            if let Some(results) = state.results.remove(&seq) {
                break Some(results);
            }
            if !lock(&self.executing).contains(&seq) {
                break None;
            }
            let slot = state
                .waiters
                .entry(seq)
                .or_insert_with(|| WaiterSlot { cv: Arc::new(Condvar::new()), waiters: 0 });
            if !registered {
                slot.waiters += 1;
                registered = true;
            }
            let cv = Arc::clone(&slot.cv);
            state = cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        };
        if registered {
            let slot = state.waiters.get_mut(&seq).expect("registered waiters hold a slot");
            slot.waiters -= 1;
            if slot.waiters == 0 {
                state.waiters.remove(&seq);
            }
        }
        outcome
    }

    /// Drops every retired-but-unwaited result across all shards.
    pub(crate) fn discard_all_retired(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let mut state = lock(&s.state);
                let n = state.results.len();
                state.results.clear();
                n
            })
            .sum()
    }
}

impl FlashCosmosDevice {
    /// Queues a batch for execution without blocking: the batch is
    /// compiled (joint dedup/sharing, cache consultation, per-die program
    /// queues) but **no chip executes anything** until
    /// [`FlashCosmosDevice::drain`] or [`Ticket::wait`]. Batches queued
    /// together retire in one pass, interleaving on idle dies — see
    /// [`crate::session`] for the overlap model and the staleness rules.
    /// Runs under the shared device lock: N threads submit concurrently.
    ///
    /// ## Backpressure contract
    ///
    /// The admission queue is **bounded** (default 1024 batches; tune
    /// with [`Self::set_admission_capacity`]). When submitters outrun
    /// the drain side, admission fails fast with
    /// [`FcError::Overloaded`] instead of queueing without limit — the
    /// caller backs off, drains, or retries; memory never grows
    /// unboundedly with offered load. `Overloaded` is a load signal,
    /// not a failure: nothing about the device or the batch is wrong.
    ///
    /// # Errors
    ///
    /// [`FcError::Overloaded`] when the admission queue is full, plus
    /// compile-time failures (unknown operands, size mismatches,
    /// planner rejections) — the same set [`FlashCosmosDevice::submit`]
    /// reports before executing.
    pub fn submit_async(&self, batch: &QueryBatch) -> Result<Ticket, FcError> {
        let compiled = self.core().compile_batch(batch)?;
        self.session.enqueue(batch.clone(), compiled)
    }

    /// Bounds the async admission queue ([`Self::submit_async`]'s
    /// backpressure threshold). Already-queued batches are never
    /// dropped; a bound below the current depth just refuses new
    /// admissions until the queue drains below it.
    pub fn set_admission_capacity(&self, capacity: usize) {
        self.session.set_admission_capacity(capacity);
    }

    /// Retires every queued batch in one pass and reports the die-overlap
    /// win. Results park in the session until their ticket is waited on —
    /// clients that drain without waiting should periodically call
    /// [`FlashCosmosDevice::discard_retired`], or the parked results
    /// accumulate.
    ///
    /// A queued batch whose operand generations (or the device epoch)
    /// changed since submission is recompiled against current placement
    /// first, so drained queries always observe drain-time data — a
    /// queued program can never sense through a stale wordline map.
    ///
    /// Concurrency: the claim-and-execute phase runs under the shared
    /// (read) device lock, so drains from several threads proceed in
    /// parallel — each claims whatever is pending at that instant, and
    /// per-die chip mutexes arbitrate the sensing. Only the background
    /// tail (maintenance jobs, scrubbing, the debug-build device audit)
    /// takes the write lock, and only when there is such work.
    ///
    /// # Errors
    ///
    /// Compile or chip failures of any queued batch; the failing batch
    /// is dropped (its ticket reports [`FcError::UnknownTicket`]) while
    /// batches still queued behind it stay pending for the next drain.
    pub fn drain(&self) -> Result<DrainStats, FcError> {
        let mut stats;
        let mut combined;
        let overlap_budget_us;
        let scrub_scan_hit;
        let scrub_backlog;
        let mut executed_any = false;
        {
            let core = self.core();
            // Retention scrubbing rides the drain like regroup
            // maintenance does: candidates whose modeled worst-grade
            // RBER approaches the ECC margin are scheduled and executed
            // in the write-locked tail below. Phase A only *scans*
            // (read-only) to learn whether that tail is needed. (Under
            // the functional error model nothing ever qualifies, so
            // this is free for error-free workloads.)
            scrub_scan_hit = core.scrub_would_schedule();
            scrub_backlog = core.pending_scrub() > 0;
            if self.session.in_flight() == 0
                && self.session.jobs().is_empty()
                && !scrub_backlog
                && !scrub_scan_hit
            {
                return Ok(DrainStats::default());
            }
            let mut per_batch: Vec<DieQueues> = Vec::new();
            combined = DieQueues::for_config(core.ssd.config());
            stats = DrainStats::default();
            // Claim-execute-retire one batch at a time: concurrent
            // drains each grab the next queued batch, so a backlog is
            // served by every draining thread in parallel (per-die chip
            // mutexes arbitrate the sensing) rather than by whichever
            // drain got there first.
            while let Some(mut pb) = self.session.claim_next() {
                let step = (|| {
                    let stale = pb.compiled.epoch != core.epoch
                        || pb
                            .compiled
                            .snapshot
                            .iter()
                            .any(|&(id, gen)| core.operand_generation(id) != gen);
                    if stale {
                        // Recompile against drain-time placement —
                        // without re-feeding the affinity tracker (one
                        // submission is one observation, however often
                        // it recompiles).
                        pb.compiled = core.recompile_batch(&pb.source)?;
                    } else {
                        // Earlier batches in this drain may have
                        // populated the cache since this batch compiled
                        // — replay their results instead of re-sensing.
                        core.refresh_cache_hits(&mut pb.compiled);
                    }
                    let mut outs: Vec<BitVec> =
                        (0..pb.compiled.queries()).map(|_| BitVec::zeros(0)).collect();
                    let mut own = DieQueues::for_config(core.ssd.config());
                    let (batch_stats, failures) =
                        core.execute_compiled(&pb.compiled, &mut outs, Some(&mut own))?;
                    Ok((outs, batch_stats, failures, own))
                })();
                match step {
                    Ok((outs, batch_stats, failures, own)) => {
                        stats.batches += 1;
                        stats.senses += batch_stats.senses;
                        stats.merge_us += batch_stats.merge_us;
                        combined.merge(&own);
                        core.die_load.merge(&own);
                        per_batch.push(own);
                        executed_any = true;
                        // Per-query failure isolation carries through
                        // the async path: the ticket's results report
                        // which queries were unanswerable while the
                        // rest of the batch retired normally.
                        self.session.retire(
                            pb.seq,
                            BatchResults { results: outs, stats: batch_stats, failures },
                        );
                    }
                    Err(e) => {
                        // The failed batch never retires; release its
                        // claim so waiters wake and report UnknownTicket
                        // instead of parking. Batches still pending stay
                        // queued for the next drain.
                        self.session.abandon(&[pb.seq]);
                        return Err(e);
                    }
                }
            }
            let overlap = overlap_report(&per_batch);
            stats.combined_critical_path_us = overlap.combined_critical_us;
            stats.serial_critical_path_us = overlap.serial_critical_us;
            stats.dies_used = combined.dies_busy();
            stats.busiest_die_us = combined.busiest_us();
            stats.busiest_channel_us = combined.busiest_channel_us();
            overlap_budget_us = overlap.combined_critical_us;
            stats.health = core.health();
        }
        // Background tail: queued maintenance and scrubbing ride the
        // drain — migration and scrub jobs fill the per-die idle slack
        // up to the configured critical-path budget (what doesn't fit
        // stays queued for the next pass). Structural mutation, so this
        // takes the write lock; the debug-build device audit (pass 2 of
        // the static analyzer) runs under the same exclusive guard — a
        // consistent snapshot no concurrent drain can shear.
        let needs_bg = !self.session.jobs().is_empty()
            || scrub_scan_hit
            || scrub_backlog
            || (cfg!(debug_assertions) && executed_any);
        if needs_bg {
            let mut core = self.core_write();
            core.schedule_scrub();
            if !self.session.jobs().is_empty() || core.pending_scrub() > 0 {
                let budget = (overlap_budget_us * core.maintenance_cfg.slack_factor)
                    .max(core.maintenance_cfg.slack_floor_us);
                if !self.session.jobs().is_empty() {
                    stats.maintenance = core.execute_maintenance(&mut combined, budget)?;
                }
                if core.pending_scrub() > 0 {
                    let (scrubbed, deferred) = core.execute_scrub(&mut combined, budget)?;
                    stats.maintenance.pages_scrubbed = scrubbed;
                    stats.maintenance.scrubs_deferred = deferred;
                }
                stats.health = core.health();
            }
            #[cfg(debug_assertions)]
            crate::audit::enforce_device(&core);
        }
        Ok(stats)
    }

    /// Drops every drained-but-unwaited result, releasing their memory.
    /// Their tickets subsequently report [`FcError::UnknownTicket`].
    ///
    /// Retired results are held until their ticket is waited on
    /// ([`Session::retired`] counts them), so a fire-and-forget client
    /// that drains without waiting must call this periodically — there is
    /// no implicit bound, because silently dropping results a ticket
    /// still references would turn a memory policy into a correctness
    /// surprise.
    pub fn discard_retired(&self) -> usize {
        self.session.discard_all_retired()
    }

    /// Retires one async batch: drains the queues if the ticket is still
    /// in flight, then hands back its [`BatchResults`]. Each ticket can
    /// be waited on once.
    ///
    /// If another thread has already claimed the ticket's batch, this
    /// parks on the session's retire condvar — **without** holding the
    /// device lock — until the batch lands (or its drain fails, in
    /// which case the ticket reports [`FcError::UnknownTicket`]).
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownTicket`] for an already-waited (or foreign)
    /// ticket, plus anything [`FlashCosmosDevice::drain`] can return.
    pub fn wait(&self, ticket: Ticket) -> Result<BatchResults, FcError> {
        loop {
            if let Some(results) = self.session.take_retired(ticket.seq) {
                return Ok(results);
            }
            if self.session.is_pending(ticket.seq) {
                self.drain()?;
                continue;
            }
            if let Some(results) = self.session.wait_retired(ticket.seq) {
                return Ok(results);
            }
            // Not retired, not pending, not executing. It may have
            // hopped pending → executing → retired between our checks:
            // one final sweep before declaring the ticket unknown.
            if let Some(results) = self.session.take_retired(ticket.seq) {
                return Ok(results);
            }
            if self.session.is_pending(ticket.seq) || self.session.is_executing(ticket.seq) {
                continue;
            }
            return Err(FcError::UnknownTicket(ticket.seq));
        }
    }

    /// Read-only view of the session state (in-flight batches, cache
    /// counters). Does not take the device lock — the session carries
    /// its own mutex shards.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Bounds the result cache to `capacity` memoized unit results
    /// (evicting the admission policy's victims down to the bound). `0`
    /// disables caching — the cold-cache reference configuration the
    /// soundness tests compare against.
    pub fn set_result_cache_capacity(&self, capacity: usize) {
        self.session.cache().set_capacity(capacity);
    }

    /// Drops every memoized result (counters survive).
    pub fn clear_result_cache(&self) {
        self.session.cache().clear();
    }

    /// Installs a result-cache admission/eviction policy (see
    /// [`crate::maintenance`]): [`CostAwareAdmission`] (the default)
    /// retains by hit frequency × senses saved,
    /// [`crate::maintenance::FifoAdmission`] restores the oldest-first
    /// bound. Resident entries keep their history; only future victim
    /// choices change.
    pub fn set_cache_admission(&self, policy: Box<dyn CacheAdmission>) {
        self.session.cache().set_policy(policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StoreHints;
    use crate::expr::Expr;
    use fc_ssd::SsdConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> FlashCosmosDevice {
        FlashCosmosDevice::new(SsdConfig::tiny_test())
    }

    fn write_group(dev: &mut FlashCosmosDevice, group: &str, n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let v = BitVec::random(dev.config().page_bits(), &mut rng);
                dev.fc_write(&format!("{group}-{i}"), &v, StoreHints::and_group(group)).unwrap().id
            })
            .collect()
    }

    #[test]
    fn submit_async_defers_execution_until_drain() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 3, 1);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        let (expect, _) = dev.fc_read(&Expr::and_vars(ids.iter().copied())).unwrap();
        dev.clear_result_cache();

        let ticket = dev.submit_async(&batch).unwrap();
        assert_eq!(dev.session().in_flight(), 1, "queued, not executed");
        let drained = dev.drain().unwrap();
        assert_eq!(drained.batches, 1);
        assert!(drained.senses > 0);
        assert_eq!(dev.session().in_flight(), 0);
        let results = ticket.wait(&dev).unwrap();
        assert_eq!(results.results[0], expect);
        // Double-wait is a proper error, not a panic or a stale result.
        assert!(matches!(dev.wait(ticket).unwrap_err(), FcError::UnknownTicket(_)));
    }

    #[test]
    fn wait_drains_implicitly_and_empty_drain_is_cheap() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 2);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        let ticket = dev.submit_async(&batch).unwrap();
        let results = dev.wait(ticket).unwrap();
        assert_eq!(results.results.len(), 1);
        let drained = dev.drain().unwrap();
        assert_eq!(drained, DrainStats::default(), "nothing left to drain");
    }

    #[test]
    fn discard_retired_frees_unwaited_results() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 9);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        // Fire-and-forget: drain without waiting parks the results...
        let t1 = dev.submit_async(&batch).unwrap();
        dev.drain().unwrap();
        let t2 = dev.submit_async(&batch).unwrap();
        dev.drain().unwrap();
        assert_eq!(dev.session().retired(), 2);
        // ...until the client discards them; their tickets then error.
        assert_eq!(dev.discard_retired(), 2);
        assert_eq!(dev.session().retired(), 0);
        assert!(matches!(dev.wait(t1).unwrap_err(), FcError::UnknownTicket(_)));
        assert!(matches!(t2.wait(&dev).unwrap_err(), FcError::UnknownTicket(_)));
    }

    #[test]
    fn cache_entries_evict_oldest_first_and_capacity_zero_disables() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 4, 3);
        dev.set_result_cache_capacity(2);
        for &id in &ids {
            dev.fc_read(&Expr::var(id)).unwrap();
        }
        let stats = dev.session().cache_stats();
        assert_eq!(stats.entries, 2, "capacity bound holds");
        assert_eq!(stats.evictions, 2);
        // The two youngest entries survived.
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert_eq!(s.senses, 0, "young entry still cached");
        let (_, s) = dev.fc_read(&Expr::var(ids[0])).unwrap();
        assert!(s.senses > 0, "oldest entry was evicted");
        dev.set_result_cache_capacity(0);
        assert_eq!(dev.session().cache_stats().entries, 0);
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert!(s.senses > 0, "capacity 0 disables caching");
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert!(s.senses > 0, "still disabled on the re-read");
    }

    #[test]
    fn ssd_mut_access_bumps_the_epoch_and_clears_the_cache() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 4);
        let expr = Expr::and_vars(ids.iter().copied());
        let (first, s1) = dev.fc_read(&expr).unwrap();
        assert!(s1.senses > 0);
        let (second, s2) = dev.fc_read(&expr).unwrap();
        assert_eq!(first, second);
        assert_eq!(s2.senses, 0, "warm cache");
        // A raw-SSD mutation (here: retention aging) cannot be itemized,
        // so it must invalidate everything.
        dev.ssd_mut().set_retention_months(6.0);
        assert_eq!(dev.session().cache_stats().entries, 0);
        let (third, s3) = dev.fc_read(&expr).unwrap();
        assert_eq!(first, third, "ESP keeps results exact under aging");
        assert!(s3.senses > 0, "epoch bump forced a fresh execution");
    }
}
