//! Queue-first submission and the generation-stamped cross-batch result
//! cache: the device's async session layer.
//!
//! The batch API (PR 2) amortizes work *within* one submission; a
//! production front end has several batches in flight and repeats
//! predicates across them. This module adds both halves:
//!
//! * **Async ticketed submission** —
//!   [`FlashCosmosDevice::submit_async`] compiles a batch into per-die
//!   program queues *without executing anything* and returns a
//!   [`Ticket`]. [`FlashCosmosDevice::drain`] retires everything queued
//!   in one pass; [`Ticket::wait`] drains (if needed) and hands back that
//!   batch's [`BatchResults`]. Dies execute their queues independently,
//!   so two in-flight batches interleave on idle dies: the combined
//!   modeled critical path ([`DrainStats::combined_critical_path_us`],
//!   busiest die of the summed [`DieQueues`] occupancy) sits at or below
//!   the sum of the batches' standalone critical paths
//!   ([`DrainStats::serial_critical_path_us`]) — strictly below whenever
//!   the batches' busy dies differ.
//! * **Cross-batch result cache** — every plan unit is keyed by
//!   `(epoch, canonical NNF, [(operand, generation)])` and its result
//!   vector memoized at execution. A later submit (sync or async) whose
//!   unit key matches replays the memoized pages: zero senses, zero chip
//!   time, bit-identical output.
//!
//! ## Why stale results are structurally impossible
//!
//! The cache key never compares data — it compares *generations*. Every
//! mutation that could change what a compiled program senses bumps a
//! stamp the key includes:
//!
//! | hazard | stamp bumped |
//! |---|---|
//! | [`FlashCosmosDevice::fc_overwrite`] (name overwrite) | that operand's generation |
//! | [`FlashCosmosDevice::migrate_operand`] (placement move) | that operand's generation |
//! | raw [`FlashCosmosDevice::ssd_mut`] access (reliability-mode changes, wear/fault injection, erases) | the device epoch |
//!
//! A generation is drawn from a monotonic counter and never reused, so a
//! key identifies one immutable snapshot of its operands; an old entry
//! simply can never match again (PR 3's poisoned-placement-cache bug was
//! this same hazard class — here the invalidation is designed in, not
//! patched on). Queued async batches carry the same snapshot: at drain
//! time a batch whose snapshot no longer matches is **recompiled**
//! against current placement, so async queries always observe drain-time
//! data — identical to what a synchronous submit at drain time would
//! return.
//!
//! ```
//! use flash_cosmos::device::{FlashCosmosDevice, StoreHints};
//! use flash_cosmos::batch::QueryBatch;
//! use fc_ssd::SsdConfig;
//! use fc_bits::BitVec;
//!
//! let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
//! let a = dev.fc_write("a", &BitVec::ones(64), StoreHints::and_group("g")).unwrap();
//! let b = dev.fc_write("b", &BitVec::zeros(64), StoreHints::and_group("g")).unwrap();
//! let mut batch = QueryBatch::new();
//! batch.push(a & b);
//!
//! // Queue two batches, then retire them in one overlapped pass.
//! let t1 = dev.submit_async(&batch).unwrap();
//! let t2 = dev.submit_async(&batch).unwrap();
//! let drained = dev.drain().unwrap();
//! assert_eq!(drained.batches, 2);
//! let r1 = t1.wait(&mut dev).unwrap();
//! let r2 = t2.wait(&mut dev).unwrap();
//! assert_eq!(r1.results, r2.results);
//! // The second batch re-used the first one's cached unit: no senses.
//! assert_eq!(r2.stats.senses, 0);
//! assert_eq!(r2.stats.cached_units, 1);
//! ```

use std::collections::{HashMap, VecDeque};

use fc_bits::BitVec;
use fc_ssd::pipeline::{overlap_report, DieQueues};

use crate::batch::{BatchResults, CompiledBatch, QueryBatch};
use crate::device::{FcError, FlashCosmosDevice};
use crate::expr::{Nnf, OperandId};
use crate::maintenance::{
    AffinityTracker, CacheAdmission, CacheEntryInfo, CostAwareAdmission, MaintenanceStats,
    RegroupJob, RetiredJob,
};
use crate::recovery::DeviceHealth;

/// Result-cache key: device epoch, canonical normal form, and the
/// placement generation of every referenced operand (ascending by id).
/// Key equality implies the memoized result is bit-identical to what a
/// fresh execution would produce.
pub(crate) type CacheKey = (u64, Nnf, Vec<(OperandId, u64)>);

/// One memoized unit result.
pub(crate) struct CacheEntry {
    /// The unit's full output vector (`pages × page_bits` bits).
    pub(crate) result: BitVec,
    /// Senses a cold execution of the unit runs (serial-cost accounting
    /// for hits).
    pub(crate) senses: u64,
    /// Lookups this entry has served (feeds the cost-aware admission
    /// score and the affinity tracker).
    hits: u64,
    /// Insertion sequence (monotonic; ties in admission scores degrade to
    /// FIFO on it).
    seq: u64,
}

impl CacheEntry {
    fn info(&self) -> CacheEntryInfo {
        CacheEntryInfo {
            hits: self.hits,
            senses: self.senses,
            seq: self.seq,
            bits: self.result.len(),
        }
    }
}

/// Observable cache counters (see [`Session::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries (0 = caching disabled).
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and usually led to an insert).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Inserts the admission policy refused (the fresh entry scored below
    /// every resident entry — only a non-FIFO policy ever refuses).
    pub rejections: u64,
}

/// The generation-stamped result cache. Bounded; when full, the
/// installed [`CacheAdmission`] policy picks the eviction victim (lowest
/// score, oldest on ties) and may refuse the insert outright (cost-aware
/// admission). Invalidation is purely structural — stale keys can never
/// match — so eviction is only a memory bound, never a correctness
/// mechanism.
pub(crate) struct ResultCache {
    entries: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    policy: Box<dyn CacheAdmission>,
    next_seq: u64,
    /// New-key insert attempts since creation; every
    /// [`ResultCache::decay_window`] of them halves all hit counts so
    /// frequency scores age (an LFU score without decay would let a
    /// once-hot entry squat forever after the working set shifts).
    attempts: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejections: u64,
}

/// Default bound on memoized unit results.
const DEFAULT_CACHE_CAPACITY: usize = 256;

impl Default for ResultCache {
    fn default() -> Self {
        Self {
            entries: HashMap::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            policy: Box::new(CostAwareAdmission),
            next_seq: 0,
            attempts: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            rejections: 0,
        }
    }
}

impl ResultCache {
    /// Whether inserts can possibly be served later — callers skip the
    /// result/key clones feeding [`ResultCache::insert`] when disabled.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn lookup(&mut self, key: &CacheKey) -> Option<&CacheEntry> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                self.hits += 1;
                Some(entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// New-key insert attempts between hit-count halvings: two cache
    /// turnovers' worth, so scores reflect roughly the last few
    /// working-set generations.
    fn decay_window(&self) -> u64 {
        (self.capacity as u64 * 2).max(8)
    }

    /// The resident entry with the lowest `(score, seq)` — the next
    /// eviction victim under the installed policy.
    fn victim(&self) -> Option<(&CacheKey, CacheEntryInfo)> {
        self.entries.iter().map(|(k, e)| (k, e.info())).min_by(|(_, a), (_, b)| {
            self.policy.score(a).total_cmp(&self.policy.score(b)).then_with(|| a.seq.cmp(&b.seq))
        })
    }

    /// Evicts down to `bound` entries via the policy's victim choice.
    fn evict_to(&mut self, bound: usize) {
        while self.entries.len() > bound {
            let key = self.victim().map(|(k, _)| k.clone()).expect("non-empty while over bound");
            self.entries.remove(&key);
            self.evictions += 1;
        }
    }

    pub(crate) fn insert(&mut self, key: CacheKey, result: BitVec, senses: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(existing) = self.entries.get_mut(&key) {
            // Same key re-inserted (e.g. capacity was toggled): refresh
            // the payload, keep the entry's history.
            existing.result = result;
            existing.senses = senses;
            return;
        }
        // Frequency aging: halve every resident's hit count once per
        // decay window of new-key insert attempts, so hit-frequency
        // scores measure the *recent* past — a once-hot entry decays to
        // evictable after the working set shifts, while genuinely hot
        // entries re-earn their hits between halvings.
        self.attempts += 1;
        if self.attempts.is_multiple_of(self.decay_window()) {
            for entry in self.entries.values_mut() {
                entry.hits /= 2;
            }
        }
        let fresh = CacheEntryInfo { hits: 0, senses, seq: self.next_seq, bits: result.len() };
        if self.entries.len() >= self.capacity {
            let Some((victim_key, victim)) = self.victim().map(|(k, i)| (k.clone(), i)) else {
                return; // capacity 0 handled above; len >= capacity >= 1
            };
            if !self.policy.admit(&fresh, &victim) {
                self.rejections += 1;
                return;
            }
            self.entries.remove(&victim_key);
            self.evictions += 1;
        }
        self.entries.insert(key, CacheEntry { result, senses, hits: 0, seq: self.next_seq });
        self.next_seq += 1;
    }

    /// Like [`ResultCache::lookup`] but for re-checking a unit that
    /// already missed (and was counted) at compile time: a hit is
    /// counted, a still-miss is not double-counted.
    pub(crate) fn peek_hit(&mut self, key: &CacheKey) -> Option<&CacheEntry> {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.hits += 1;
                self.hits += 1;
                Some(entry)
            }
            None => None,
        }
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// Resident keys, in no particular order (the device audit
    /// cross-checks every cached generation against the operand table —
    /// see `crate::audit`).
    pub(crate) fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.entries.keys()
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.evict_to(capacity);
    }

    pub(crate) fn set_policy(&mut self, policy: Box<dyn CacheAdmission>) {
        self.policy = policy;
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            rejections: self.rejections,
        }
    }
}

/// A batch queued by [`FlashCosmosDevice::submit_async`], waiting for a
/// drain.
pub(crate) struct PendingBatch {
    seq: u64,
    /// The source queries, kept so a stale compilation can be redone
    /// against drain-time placement.
    source: QueryBatch,
    compiled: CompiledBatch,
}

/// Handle to one async-submitted batch. Obtained from
/// [`FlashCosmosDevice::submit_async`]; redeem it with [`Ticket::wait`]
/// (or [`FlashCosmosDevice::wait`]) exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    seq: u64,
}

impl Ticket {
    /// The ticket's sequence number (diagnostics / logging).
    pub fn id(&self) -> u64 {
        self.seq
    }

    /// Retires this batch and returns its results, draining the device's
    /// queues first if it is still in flight.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownTicket`] when waited on twice, plus anything
    /// [`FlashCosmosDevice::drain`] can return.
    pub fn wait(self, dev: &mut FlashCosmosDevice) -> Result<BatchResults, FcError> {
        dev.wait(self)
    }
}

/// Statistics of one [`FlashCosmosDevice::drain`] pass over every queued
/// batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrainStats {
    /// Batches retired by this drain.
    pub batches: usize,
    /// Sensing operations executed across all retired batches.
    pub senses: u64,
    /// Modeled critical path of the combined per-die queues, µs: dies run
    /// their queues concurrently, so this is the busiest die's total
    /// across *all* drained batches.
    pub combined_critical_path_us: f64,
    /// Sum of the batches' standalone critical paths, µs — what
    /// back-to-back synchronous submits would report.
    pub serial_critical_path_us: f64,
    /// Distinct dies that executed sensing work during the drain.
    pub dies_used: usize,
    /// Background-maintenance work this drain filled into the idle-die
    /// slack (see [`crate::maintenance`]): migrations executed within the
    /// critical-path budget, deferred jobs, retirements — plus retention
    /// scrubbing (see [`crate::recovery`]), which shares the same budget.
    pub maintenance: MaintenanceStats,
    /// Device-wide reliability counters snapshotted at the end of this
    /// drain (cumulative since device creation, not per-drain deltas).
    /// An empty drain returns [`DrainStats::default`] without snapshotting.
    pub health: DeviceHealth,
}

impl DrainStats {
    /// Critical-path time the die-overlap saved versus serial submission,
    /// µs (≥ 0).
    pub fn overlap_saved_us(&self) -> f64 {
        (self.serial_critical_path_us - self.combined_critical_path_us).max(0.0)
    }
}

/// The device's session state: in-flight async batches, retired results
/// awaiting their [`Ticket::wait`], the cross-batch result cache, and
/// the maintenance layer's observations and work queue. Accessible
/// read-only through [`FlashCosmosDevice::session`].
#[derive(Default)]
pub struct Session {
    pub(crate) cache: ResultCache,
    pending: Vec<PendingBatch>,
    retired: HashMap<u64, BatchResults>,
    next_seq: u64,
    /// Which operand sets get fused together, and what they cost — the
    /// regrouping planner's input (fed by every batch compile).
    pub(crate) affinity: AffinityTracker,
    /// Planned-but-not-executed migration jobs, FIFO.
    pub(crate) jobs: VecDeque<RegroupJob>,
    /// Bounded log of jobs dropped on generation mismatch.
    pub(crate) retired_jobs: VecDeque<RetiredJob>,
    /// Total jobs ever retired (the log itself is bounded).
    pub(crate) jobs_retired_total: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("in_flight", &self.pending.len())
            .field("retired", &self.retired.len())
            .field("cache", &self.cache.stats())
            .field("tracked_sets", &self.affinity.len())
            .field("pending_jobs", &self.jobs.len())
            .finish()
    }
}

impl Session {
    /// Batches queued by `submit_async` and not yet drained.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Drained batches whose ticket has not been waited on yet.
    pub fn retired(&self) -> usize {
        self.retired.len()
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The affinity tracker's view of co-fused operand sets.
    pub fn affinity(&self) -> &AffinityTracker {
        &self.affinity
    }

    /// Planned migration jobs not yet executed.
    pub fn pending_maintenance(&self) -> usize {
        self.jobs.len()
    }

    /// The bounded log of retired (generation-mismatched) migration jobs,
    /// oldest first. Retirements beyond
    /// [`MaintenanceConfig::retired_log_capacity`] drop the oldest log
    /// entry; [`Session::jobs_retired_total`] still counts them.
    ///
    /// [`MaintenanceConfig::retired_log_capacity`]: crate::maintenance::MaintenanceConfig::retired_log_capacity
    pub fn retired_jobs(&self) -> impl Iterator<Item = &RetiredJob> {
        self.retired_jobs.iter()
    }

    /// Total migration jobs ever retired on generation mismatch.
    pub fn jobs_retired_total(&self) -> u64 {
        self.jobs_retired_total
    }
}

impl FlashCosmosDevice {
    /// Queues a batch for execution without blocking: the batch is
    /// compiled (joint dedup/sharing, cache consultation, per-die program
    /// queues) but **no chip executes anything** until
    /// [`FlashCosmosDevice::drain`] or [`Ticket::wait`]. Batches queued
    /// together retire in one pass, interleaving on idle dies — see
    /// [`crate::session`] for the overlap model and the staleness rules.
    ///
    /// # Errors
    ///
    /// Compile-time failures only (unknown operands, size mismatches,
    /// planner rejections) — the same set [`FlashCosmosDevice::submit`]
    /// reports before executing.
    pub fn submit_async(&mut self, batch: &QueryBatch) -> Result<Ticket, FcError> {
        let compiled = self.compile_batch(batch)?;
        let seq = self.session.next_seq;
        self.session.next_seq += 1;
        self.session.pending.push(PendingBatch { seq, source: batch.clone(), compiled });
        Ok(Ticket { seq })
    }

    /// Retires every queued batch in one pass and reports the die-overlap
    /// win. Results park in the session until their ticket is waited on —
    /// clients that drain without waiting should periodically call
    /// [`FlashCosmosDevice::discard_retired`], or the parked results
    /// accumulate.
    ///
    /// A queued batch whose operand generations (or the device epoch)
    /// changed since submission is recompiled against current placement
    /// first, so drained queries always observe drain-time data — a
    /// queued program can never sense through a stale wordline map.
    ///
    /// # Errors
    ///
    /// Compile or chip failures of any queued batch; queued batches not
    /// yet executed when the error surfaced are dropped (their tickets
    /// report [`FcError::UnknownTicket`]).
    pub fn drain(&mut self) -> Result<DrainStats, FcError> {
        let pending = std::mem::take(&mut self.session.pending);
        // Retention scrubbing rides the drain like regroup maintenance
        // does: candidates whose modeled worst-grade RBER approaches the
        // ECC margin queue up here and execute in the idle-die slack
        // below. (Under the functional error model nothing ever
        // qualifies, so this is free for error-free workloads.)
        self.schedule_scrub();
        if pending.is_empty() && self.session.jobs.is_empty() && self.pending_scrub() == 0 {
            return Ok(DrainStats::default());
        }
        let dies = self.ssd.config().total_dies();
        let mut per_batch: Vec<DieQueues> = Vec::with_capacity(pending.len());
        let mut combined = DieQueues::new(dies);
        let mut stats = DrainStats { batches: pending.len(), ..DrainStats::default() };
        for mut pb in pending {
            let stale = pb.compiled.epoch != self.epoch
                || pb.compiled.snapshot.iter().any(|&(id, gen)| self.operand_generation(id) != gen);
            if stale {
                // Recompile against drain-time placement — without
                // re-feeding the affinity tracker (one submission is one
                // observation, however often it recompiles).
                pb.compiled = self.recompile_batch(&pb.source)?;
            } else {
                // Earlier batches in this drain may have populated the
                // cache since this batch compiled — replay their results
                // instead of re-sensing.
                self.refresh_cache_hits(&mut pb.compiled);
            }
            let mut outs: Vec<BitVec> =
                (0..pb.compiled.queries()).map(|_| BitVec::zeros(0)).collect();
            let mut own = DieQueues::new(dies);
            let (batch_stats, failures) =
                self.execute_compiled(&pb.compiled, &mut outs, Some(&mut own))?;
            stats.senses += batch_stats.senses;
            combined.merge(&own);
            per_batch.push(own);
            // Per-query failure isolation carries through the async path:
            // the ticket's results report which queries were unanswerable
            // while the rest of the batch retired normally.
            self.session
                .retired
                .insert(pb.seq, BatchResults { results: outs, stats: batch_stats, failures });
        }
        let overlap = overlap_report(&per_batch);
        stats.combined_critical_path_us = overlap.combined_critical_us;
        stats.serial_critical_path_us = overlap.serial_critical_us;
        stats.dies_used = combined.dies_busy();
        // Queued maintenance and scrubbing ride the drain: migration and
        // scrub jobs fill the per-die idle slack up to the configured
        // critical-path budget (what doesn't fit stays queued for the
        // next pass).
        if !self.session.jobs.is_empty() || self.pending_scrub() > 0 {
            let budget = (overlap.combined_critical_us * self.maintenance_cfg.slack_factor)
                .max(self.maintenance_cfg.slack_floor_us);
            if !self.session.jobs.is_empty() {
                stats.maintenance = self.execute_maintenance(&mut combined, budget)?;
            }
            if self.pending_scrub() > 0 {
                let (scrubbed, deferred) = self.execute_scrub(&mut combined, budget)?;
                stats.maintenance.pages_scrubbed = scrubbed;
                stats.maintenance.scrubs_deferred = deferred;
            }
        }
        stats.health = self.health();
        // Pass 2 of the static analyzer: cross-check the whole device
        // metadata after the drain mutated it (debug builds only — see
        // `crate::audit`).
        #[cfg(debug_assertions)]
        crate::audit::enforce_device(self);
        Ok(stats)
    }

    /// Drops every drained-but-unwaited result, releasing their memory.
    /// Their tickets subsequently report [`FcError::UnknownTicket`].
    ///
    /// Retired results are held until their ticket is waited on
    /// ([`Session::retired`] counts them), so a fire-and-forget client
    /// that drains without waiting must call this periodically — there is
    /// no implicit bound, because silently dropping results a ticket
    /// still references would turn a memory policy into a correctness
    /// surprise.
    pub fn discard_retired(&mut self) -> usize {
        let dropped = self.session.retired.len();
        self.session.retired.clear();
        dropped
    }

    /// Retires one async batch: drains the queues if the ticket is still
    /// in flight, then hands back its [`BatchResults`]. Each ticket can
    /// be waited on once.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownTicket`] for an already-waited (or foreign)
    /// ticket, plus anything [`FlashCosmosDevice::drain`] can return.
    pub fn wait(&mut self, ticket: Ticket) -> Result<BatchResults, FcError> {
        if !self.session.retired.contains_key(&ticket.seq)
            && self.session.pending.iter().any(|p| p.seq == ticket.seq)
        {
            self.drain()?;
        }
        self.session.retired.remove(&ticket.seq).ok_or(FcError::UnknownTicket(ticket.seq))
    }

    /// Read-only view of the session state (in-flight batches, cache
    /// counters).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Bounds the result cache to `capacity` memoized unit results
    /// (evicting the admission policy's victims down to the bound). `0`
    /// disables caching — the cold-cache reference configuration the
    /// soundness tests compare against.
    pub fn set_result_cache_capacity(&mut self, capacity: usize) {
        self.session.cache.set_capacity(capacity);
    }

    /// Drops every memoized result (counters survive).
    pub fn clear_result_cache(&mut self) {
        self.session.cache.clear();
    }

    /// Installs a result-cache admission/eviction policy (see
    /// [`crate::maintenance`]): [`CostAwareAdmission`] (the default)
    /// retains by hit frequency × senses saved,
    /// [`crate::maintenance::FifoAdmission`] restores the oldest-first
    /// bound. Resident entries keep their history; only future victim
    /// choices change.
    pub fn set_cache_admission(&mut self, policy: Box<dyn CacheAdmission>) {
        self.session.cache.set_policy(policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StoreHints;
    use crate::expr::Expr;
    use fc_ssd::SsdConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> FlashCosmosDevice {
        FlashCosmosDevice::new(SsdConfig::tiny_test())
    }

    fn write_group(dev: &mut FlashCosmosDevice, group: &str, n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let v = BitVec::random(dev.config().page_bits(), &mut rng);
                dev.fc_write(&format!("{group}-{i}"), &v, StoreHints::and_group(group)).unwrap().id
            })
            .collect()
    }

    #[test]
    fn submit_async_defers_execution_until_drain() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 3, 1);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        let (expect, _) = dev.fc_read(&Expr::and_vars(ids.iter().copied())).unwrap();
        dev.clear_result_cache();

        let ticket = dev.submit_async(&batch).unwrap();
        assert_eq!(dev.session().in_flight(), 1, "queued, not executed");
        let drained = dev.drain().unwrap();
        assert_eq!(drained.batches, 1);
        assert!(drained.senses > 0);
        assert_eq!(dev.session().in_flight(), 0);
        let results = ticket.wait(&mut dev).unwrap();
        assert_eq!(results.results[0], expect);
        // Double-wait is a proper error, not a panic or a stale result.
        assert!(matches!(dev.wait(ticket).unwrap_err(), FcError::UnknownTicket(_)));
    }

    #[test]
    fn wait_drains_implicitly_and_empty_drain_is_cheap() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 2);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        let ticket = dev.submit_async(&batch).unwrap();
        let results = dev.wait(ticket).unwrap();
        assert_eq!(results.results.len(), 1);
        let drained = dev.drain().unwrap();
        assert_eq!(drained, DrainStats::default(), "nothing left to drain");
    }

    #[test]
    fn discard_retired_frees_unwaited_results() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 9);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        // Fire-and-forget: drain without waiting parks the results...
        let t1 = dev.submit_async(&batch).unwrap();
        dev.drain().unwrap();
        let t2 = dev.submit_async(&batch).unwrap();
        dev.drain().unwrap();
        assert_eq!(dev.session().retired(), 2);
        // ...until the client discards them; their tickets then error.
        assert_eq!(dev.discard_retired(), 2);
        assert_eq!(dev.session().retired(), 0);
        assert!(matches!(dev.wait(t1).unwrap_err(), FcError::UnknownTicket(_)));
        assert!(matches!(t2.wait(&mut dev).unwrap_err(), FcError::UnknownTicket(_)));
    }

    #[test]
    fn cache_entries_evict_oldest_first_and_capacity_zero_disables() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 4, 3);
        dev.set_result_cache_capacity(2);
        for &id in &ids {
            dev.fc_read(&Expr::var(id)).unwrap();
        }
        let stats = dev.session().cache_stats();
        assert_eq!(stats.entries, 2, "capacity bound holds");
        assert_eq!(stats.evictions, 2);
        // The two youngest entries survived.
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert_eq!(s.senses, 0, "young entry still cached");
        let (_, s) = dev.fc_read(&Expr::var(ids[0])).unwrap();
        assert!(s.senses > 0, "oldest entry was evicted");
        dev.set_result_cache_capacity(0);
        assert_eq!(dev.session().cache_stats().entries, 0);
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert!(s.senses > 0, "capacity 0 disables caching");
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert!(s.senses > 0, "still disabled on the re-read");
    }

    #[test]
    fn ssd_mut_access_bumps_the_epoch_and_clears_the_cache() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 4);
        let expr = Expr::and_vars(ids.iter().copied());
        let (first, s1) = dev.fc_read(&expr).unwrap();
        assert!(s1.senses > 0);
        let (second, s2) = dev.fc_read(&expr).unwrap();
        assert_eq!(first, second);
        assert_eq!(s2.senses, 0, "warm cache");
        // A raw-SSD mutation (here: retention aging) cannot be itemized,
        // so it must invalidate everything.
        dev.ssd_mut().set_retention_months(6.0);
        assert_eq!(dev.session().cache_stats().entries, 0);
        let (third, s3) = dev.fc_read(&expr).unwrap();
        assert_eq!(first, third, "ESP keeps results exact under aging");
        assert!(s3.senses > 0, "epoch bump forced a fresh execution");
    }
}
