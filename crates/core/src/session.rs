//! Queue-first submission and the generation-stamped cross-batch result
//! cache: the device's async session layer.
//!
//! The batch API (PR 2) amortizes work *within* one submission; a
//! production front end has several batches in flight and repeats
//! predicates across them. This module adds both halves:
//!
//! * **Async ticketed submission** —
//!   [`FlashCosmosDevice::submit_async`] compiles a batch into per-die
//!   program queues *without executing anything* and returns a
//!   [`Ticket`]. [`FlashCosmosDevice::drain`] retires everything queued
//!   in one pass; [`Ticket::wait`] drains (if needed) and hands back that
//!   batch's [`BatchResults`]. Dies execute their queues independently,
//!   so two in-flight batches interleave on idle dies: the combined
//!   modeled critical path ([`DrainStats::combined_critical_path_us`],
//!   busiest die of the summed [`DieQueues`] occupancy) sits at or below
//!   the sum of the batches' standalone critical paths
//!   ([`DrainStats::serial_critical_path_us`]) — strictly below whenever
//!   the batches' busy dies differ.
//! * **Cross-batch result cache** — every plan unit is keyed by
//!   `(epoch, canonical NNF, [(operand, generation)])` and its result
//!   vector memoized at execution. A later submit (sync or async) whose
//!   unit key matches replays the memoized pages: zero senses, zero chip
//!   time, bit-identical output.
//!
//! ## Why stale results are structurally impossible
//!
//! The cache key never compares data — it compares *generations*. Every
//! mutation that could change what a compiled program senses bumps a
//! stamp the key includes:
//!
//! | hazard | stamp bumped |
//! |---|---|
//! | [`FlashCosmosDevice::fc_overwrite`] (name overwrite) | that operand's generation |
//! | [`FlashCosmosDevice::migrate_operand`] (placement move) | that operand's generation |
//! | raw [`FlashCosmosDevice::ssd_mut`] access (reliability-mode changes, wear/fault injection, erases) | the device epoch |
//!
//! A generation is drawn from a monotonic counter and never reused, so a
//! key identifies one immutable snapshot of its operands; an old entry
//! simply can never match again (PR 3's poisoned-placement-cache bug was
//! this same hazard class — here the invalidation is designed in, not
//! patched on). Queued async batches carry the same snapshot: at drain
//! time a batch whose snapshot no longer matches is **recompiled**
//! against current placement, so async queries always observe drain-time
//! data — identical to what a synchronous submit at drain time would
//! return.
//!
//! ```
//! use flash_cosmos::device::{FlashCosmosDevice, StoreHints};
//! use flash_cosmos::batch::QueryBatch;
//! use fc_ssd::SsdConfig;
//! use fc_bits::BitVec;
//!
//! let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
//! let a = dev.fc_write("a", &BitVec::ones(64), StoreHints::and_group("g")).unwrap();
//! let b = dev.fc_write("b", &BitVec::zeros(64), StoreHints::and_group("g")).unwrap();
//! let mut batch = QueryBatch::new();
//! batch.push(a & b);
//!
//! // Queue two batches, then retire them in one overlapped pass.
//! let t1 = dev.submit_async(&batch).unwrap();
//! let t2 = dev.submit_async(&batch).unwrap();
//! let drained = dev.drain().unwrap();
//! assert_eq!(drained.batches, 2);
//! let r1 = t1.wait(&mut dev).unwrap();
//! let r2 = t2.wait(&mut dev).unwrap();
//! assert_eq!(r1.results, r2.results);
//! // The second batch re-used the first one's cached unit: no senses.
//! assert_eq!(r2.stats.senses, 0);
//! assert_eq!(r2.stats.cached_units, 1);
//! ```

use std::collections::{HashMap, VecDeque};

use fc_bits::BitVec;
use fc_ssd::pipeline::{overlap_report, DieQueues};

use crate::batch::{BatchResults, CompiledBatch, QueryBatch};
use crate::device::{FcError, FlashCosmosDevice};
use crate::expr::{Nnf, OperandId};

/// Result-cache key: device epoch, canonical normal form, and the
/// placement generation of every referenced operand (ascending by id).
/// Key equality implies the memoized result is bit-identical to what a
/// fresh execution would produce.
pub(crate) type CacheKey = (u64, Nnf, Vec<(OperandId, u64)>);

/// One memoized unit result.
pub(crate) struct CacheEntry {
    /// The unit's full output vector (`pages × page_bits` bits).
    pub(crate) result: BitVec,
    /// Senses a cold execution of the unit runs (serial-cost accounting
    /// for hits).
    pub(crate) senses: u64,
}

/// Observable cache counters (see [`Session::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently held.
    pub entries: usize,
    /// Maximum entries (0 = caching disabled).
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and usually led to an insert).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

/// The generation-stamped result cache. Bounded; inserts evict the oldest
/// entry (insertion order) once the capacity is reached. Invalidation is
/// purely structural — stale keys can never match — so eviction is only
/// a memory bound, never a correctness mechanism.
pub(crate) struct ResultCache {
    entries: HashMap<CacheKey, CacheEntry>,
    order: VecDeque<CacheKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Default bound on memoized unit results.
const DEFAULT_CACHE_CAPACITY: usize = 256;

impl Default for ResultCache {
    fn default() -> Self {
        Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: DEFAULT_CACHE_CAPACITY,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl ResultCache {
    /// Whether inserts can possibly be served later — callers skip the
    /// result/key clones feeding [`ResultCache::insert`] when disabled.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn lookup(&mut self, key: &CacheKey) -> Option<&CacheEntry> {
        match self.entries.get(key) {
            Some(entry) => {
                self.hits += 1;
                Some(entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, key: CacheKey, result: BitVec, senses: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.insert(key.clone(), CacheEntry { result, senses }).is_none() {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            let oldest = self.order.pop_front().expect("order tracks every entry");
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Like [`ResultCache::lookup`] but for re-checking a unit that
    /// already missed (and was counted) at compile time: a hit is
    /// counted, a still-miss is not double-counted.
    pub(crate) fn peek_hit(&mut self, key: &CacheKey) -> Option<&CacheEntry> {
        let entry = self.entries.get(key);
        if entry.is_some() {
            self.hits += 1;
        }
        entry
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > self.capacity {
            let oldest = self.order.pop_front().expect("order tracks every entry");
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

/// A batch queued by [`FlashCosmosDevice::submit_async`], waiting for a
/// drain.
pub(crate) struct PendingBatch {
    seq: u64,
    /// The source queries, kept so a stale compilation can be redone
    /// against drain-time placement.
    source: QueryBatch,
    compiled: CompiledBatch,
}

/// Handle to one async-submitted batch. Obtained from
/// [`FlashCosmosDevice::submit_async`]; redeem it with [`Ticket::wait`]
/// (or [`FlashCosmosDevice::wait`]) exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    seq: u64,
}

impl Ticket {
    /// The ticket's sequence number (diagnostics / logging).
    pub fn id(&self) -> u64 {
        self.seq
    }

    /// Retires this batch and returns its results, draining the device's
    /// queues first if it is still in flight.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownTicket`] when waited on twice, plus anything
    /// [`FlashCosmosDevice::drain`] can return.
    pub fn wait(self, dev: &mut FlashCosmosDevice) -> Result<BatchResults, FcError> {
        dev.wait(self)
    }
}

/// Statistics of one [`FlashCosmosDevice::drain`] pass over every queued
/// batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrainStats {
    /// Batches retired by this drain.
    pub batches: usize,
    /// Sensing operations executed across all retired batches.
    pub senses: u64,
    /// Modeled critical path of the combined per-die queues, µs: dies run
    /// their queues concurrently, so this is the busiest die's total
    /// across *all* drained batches.
    pub combined_critical_path_us: f64,
    /// Sum of the batches' standalone critical paths, µs — what
    /// back-to-back synchronous submits would report.
    pub serial_critical_path_us: f64,
    /// Distinct dies that executed sensing work during the drain.
    pub dies_used: usize,
}

impl DrainStats {
    /// Critical-path time the die-overlap saved versus serial submission,
    /// µs (≥ 0).
    pub fn overlap_saved_us(&self) -> f64 {
        (self.serial_critical_path_us - self.combined_critical_path_us).max(0.0)
    }
}

/// The device's session state: in-flight async batches, retired results
/// awaiting their [`Ticket::wait`], and the cross-batch result cache.
/// Accessible read-only through [`FlashCosmosDevice::session`].
#[derive(Default)]
pub struct Session {
    pub(crate) cache: ResultCache,
    pending: Vec<PendingBatch>,
    retired: HashMap<u64, BatchResults>,
    next_seq: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("in_flight", &self.pending.len())
            .field("retired", &self.retired.len())
            .field("cache", &self.cache.stats())
            .finish()
    }
}

impl Session {
    /// Batches queued by `submit_async` and not yet drained.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Drained batches whose ticket has not been waited on yet.
    pub fn retired(&self) -> usize {
        self.retired.len()
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

impl FlashCosmosDevice {
    /// Queues a batch for execution without blocking: the batch is
    /// compiled (joint dedup/sharing, cache consultation, per-die program
    /// queues) but **no chip executes anything** until
    /// [`FlashCosmosDevice::drain`] or [`Ticket::wait`]. Batches queued
    /// together retire in one pass, interleaving on idle dies — see
    /// [`crate::session`] for the overlap model and the staleness rules.
    ///
    /// # Errors
    ///
    /// Compile-time failures only (unknown operands, size mismatches,
    /// planner rejections) — the same set [`FlashCosmosDevice::submit`]
    /// reports before executing.
    pub fn submit_async(&mut self, batch: &QueryBatch) -> Result<Ticket, FcError> {
        let compiled = self.compile_batch(batch)?;
        let seq = self.session.next_seq;
        self.session.next_seq += 1;
        self.session.pending.push(PendingBatch { seq, source: batch.clone(), compiled });
        Ok(Ticket { seq })
    }

    /// Retires every queued batch in one pass and reports the die-overlap
    /// win. Results park in the session until their ticket is waited on —
    /// clients that drain without waiting should periodically call
    /// [`FlashCosmosDevice::discard_retired`], or the parked results
    /// accumulate.
    ///
    /// A queued batch whose operand generations (or the device epoch)
    /// changed since submission is recompiled against current placement
    /// first, so drained queries always observe drain-time data — a
    /// queued program can never sense through a stale wordline map.
    ///
    /// # Errors
    ///
    /// Compile or chip failures of any queued batch; queued batches not
    /// yet executed when the error surfaced are dropped (their tickets
    /// report [`FcError::UnknownTicket`]).
    pub fn drain(&mut self) -> Result<DrainStats, FcError> {
        let pending = std::mem::take(&mut self.session.pending);
        if pending.is_empty() {
            return Ok(DrainStats::default());
        }
        let dies = self.ssd.config().total_dies();
        let mut per_batch: Vec<DieQueues> = Vec::with_capacity(pending.len());
        let mut combined = DieQueues::new(dies);
        let mut stats = DrainStats { batches: pending.len(), ..DrainStats::default() };
        for mut pb in pending {
            let stale = pb.compiled.epoch != self.epoch
                || pb.compiled.snapshot.iter().any(|&(id, gen)| self.operand_generation(id) != gen);
            if stale {
                pb.compiled = self.compile_batch(&pb.source)?;
            } else {
                // Earlier batches in this drain may have populated the
                // cache since this batch compiled — replay their results
                // instead of re-sensing.
                self.refresh_cache_hits(&mut pb.compiled);
            }
            let mut outs: Vec<BitVec> =
                (0..pb.compiled.queries()).map(|_| BitVec::zeros(0)).collect();
            let mut own = DieQueues::new(dies);
            let batch_stats = self.execute_compiled(&pb.compiled, &mut outs, Some(&mut own))?;
            stats.senses += batch_stats.senses;
            combined.merge(&own);
            per_batch.push(own);
            self.session.retired.insert(pb.seq, BatchResults { results: outs, stats: batch_stats });
        }
        let overlap = overlap_report(&per_batch);
        stats.combined_critical_path_us = overlap.combined_critical_us;
        stats.serial_critical_path_us = overlap.serial_critical_us;
        stats.dies_used = combined.dies_busy();
        Ok(stats)
    }

    /// Drops every drained-but-unwaited result, releasing their memory.
    /// Their tickets subsequently report [`FcError::UnknownTicket`].
    ///
    /// Retired results are held until their ticket is waited on
    /// ([`Session::retired`] counts them), so a fire-and-forget client
    /// that drains without waiting must call this periodically — there is
    /// no implicit bound, because silently dropping results a ticket
    /// still references would turn a memory policy into a correctness
    /// surprise.
    pub fn discard_retired(&mut self) -> usize {
        let dropped = self.session.retired.len();
        self.session.retired.clear();
        dropped
    }

    /// Retires one async batch: drains the queues if the ticket is still
    /// in flight, then hands back its [`BatchResults`]. Each ticket can
    /// be waited on once.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownTicket`] for an already-waited (or foreign)
    /// ticket, plus anything [`FlashCosmosDevice::drain`] can return.
    pub fn wait(&mut self, ticket: Ticket) -> Result<BatchResults, FcError> {
        if !self.session.retired.contains_key(&ticket.seq)
            && self.session.pending.iter().any(|p| p.seq == ticket.seq)
        {
            self.drain()?;
        }
        self.session.retired.remove(&ticket.seq).ok_or(FcError::UnknownTicket(ticket.seq))
    }

    /// Read-only view of the session state (in-flight batches, cache
    /// counters).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Bounds the result cache to `capacity` memoized unit results
    /// (evicting oldest-first down to the bound). `0` disables caching —
    /// the cold-cache reference configuration the soundness tests compare
    /// against.
    pub fn set_result_cache_capacity(&mut self, capacity: usize) {
        self.session.cache.set_capacity(capacity);
    }

    /// Drops every memoized result (counters survive).
    pub fn clear_result_cache(&mut self) {
        self.session.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StoreHints;
    use crate::expr::Expr;
    use fc_ssd::SsdConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> FlashCosmosDevice {
        FlashCosmosDevice::new(SsdConfig::tiny_test())
    }

    fn write_group(dev: &mut FlashCosmosDevice, group: &str, n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let v = BitVec::random(dev.config().page_bits(), &mut rng);
                dev.fc_write(&format!("{group}-{i}"), &v, StoreHints::and_group(group)).unwrap().id
            })
            .collect()
    }

    #[test]
    fn submit_async_defers_execution_until_drain() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 3, 1);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        let (expect, _) = dev.fc_read(&Expr::and_vars(ids.iter().copied())).unwrap();
        dev.clear_result_cache();

        let ticket = dev.submit_async(&batch).unwrap();
        assert_eq!(dev.session().in_flight(), 1, "queued, not executed");
        let drained = dev.drain().unwrap();
        assert_eq!(drained.batches, 1);
        assert!(drained.senses > 0);
        assert_eq!(dev.session().in_flight(), 0);
        let results = ticket.wait(&mut dev).unwrap();
        assert_eq!(results.results[0], expect);
        // Double-wait is a proper error, not a panic or a stale result.
        assert!(matches!(dev.wait(ticket).unwrap_err(), FcError::UnknownTicket(_)));
    }

    #[test]
    fn wait_drains_implicitly_and_empty_drain_is_cheap() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 2);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        let ticket = dev.submit_async(&batch).unwrap();
        let results = dev.wait(ticket).unwrap();
        assert_eq!(results.results.len(), 1);
        let drained = dev.drain().unwrap();
        assert_eq!(drained, DrainStats::default(), "nothing left to drain");
    }

    #[test]
    fn discard_retired_frees_unwaited_results() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 9);
        let mut batch = QueryBatch::new();
        batch.push(Expr::and_vars(ids.iter().copied()));
        // Fire-and-forget: drain without waiting parks the results...
        let t1 = dev.submit_async(&batch).unwrap();
        dev.drain().unwrap();
        let t2 = dev.submit_async(&batch).unwrap();
        dev.drain().unwrap();
        assert_eq!(dev.session().retired(), 2);
        // ...until the client discards them; their tickets then error.
        assert_eq!(dev.discard_retired(), 2);
        assert_eq!(dev.session().retired(), 0);
        assert!(matches!(dev.wait(t1).unwrap_err(), FcError::UnknownTicket(_)));
        assert!(matches!(t2.wait(&mut dev).unwrap_err(), FcError::UnknownTicket(_)));
    }

    #[test]
    fn cache_entries_evict_oldest_first_and_capacity_zero_disables() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 4, 3);
        dev.set_result_cache_capacity(2);
        for &id in &ids {
            dev.fc_read(&Expr::var(id)).unwrap();
        }
        let stats = dev.session().cache_stats();
        assert_eq!(stats.entries, 2, "capacity bound holds");
        assert_eq!(stats.evictions, 2);
        // The two youngest entries survived.
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert_eq!(s.senses, 0, "young entry still cached");
        let (_, s) = dev.fc_read(&Expr::var(ids[0])).unwrap();
        assert!(s.senses > 0, "oldest entry was evicted");
        dev.set_result_cache_capacity(0);
        assert_eq!(dev.session().cache_stats().entries, 0);
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert!(s.senses > 0, "capacity 0 disables caching");
        let (_, s) = dev.fc_read(&Expr::var(ids[3])).unwrap();
        assert!(s.senses > 0, "still disabled on the re-read");
    }

    #[test]
    fn ssd_mut_access_bumps_the_epoch_and_clears_the_cache() {
        let mut dev = device();
        let ids = write_group(&mut dev, "g", 2, 4);
        let expr = Expr::and_vars(ids.iter().copied());
        let (first, s1) = dev.fc_read(&expr).unwrap();
        assert!(s1.senses > 0);
        let (second, s2) = dev.fc_read(&expr).unwrap();
        assert_eq!(first, second);
        assert_eq!(s2.senses, 0, "warm cache");
        // A raw-SSD mutation (here: retention aging) cannot be itemized,
        // so it must invalidate everything.
        dev.ssd_mut().set_retention_months(6.0);
        assert_eq!(dev.session().cache_stats().entries, 0);
        let (third, s3) = dev.fc_read(&expr).unwrap();
        assert_eq!(first, third, "ESP keeps results exact under aging");
        assert!(s3.senses > 0, "epoch bump forced a fresh execution");
    }
}
