//! Reliability and graceful degradation: the error-recovery tiers that
//! sit between the physics model's bit errors and the query API.
//!
//! The NAND model produces real failure modes — retention drift, read
//! disturb, P/E wear, manufacturing-grade spread, stuck columns — and the
//! recovery machinery escalates through tiers until the data is back or
//! provably lost:
//!
//! 1. **Read-retry** (tier 1, inside [`fc_ssd::device::SsdDevice::read`]):
//!    on an ECC decode failure the device re-senses at recalibrated Vref
//!    offsets from [`fc_nand::sense::retry_ladder`].
//! 2. **Cross-die parity rebuild** (tier 2, this module): with
//!    [`FlashCosmosDevice::enable_parity`] every stored page joins a
//!    RAIN-style XOR stripe whose members live on pairwise-distinct dies
//!    and whose parity page lives on yet another die — so a single stuck
//!    block or even a whole-die failure corrupts at most one page per
//!    stripe, and that page is rebuilt from its peers and rewritten
//!    out-of-place.
//! 3. **Retention scrubbing** (background, this module): a pluggable
//!    [`ScrubPolicy`] walks mapped ECC pages whose *modeled* RBER
//!    (worst-grade, from the block's wear/retention/disturb state)
//!    approaches the ECC correction margin and refreshes them before
//!    they become uncorrectable — in
//!    [`drain`](FlashCosmosDevice::drain)'s idle-die slack, under the
//!    same latency budget as maintenance.
//! 4. **Fault injection** ([`FaultPlan`] / [`FlashCosmosDevice::inject_faults`]):
//!    a typed, deterministic harness for retention aging, read disturb,
//!    P/E cycling, stuck blocks and die failures, replacing raw
//!    [`ssd_mut`](FlashCosmosDevice::ssd_mut) pokes. Itemized faults bump
//!    only the touched operands' generations instead of wiping the whole
//!    result cache.
//!
//! Flash-Cosmos operand pages are raw (ESP-programmed, no ECC, no
//! randomization), so a stuck column corrupts them *silently* on read.
//! Stuck-block and die faults therefore rebuild every mapped page in the
//! faulted region proactively at injection time; pages no stripe can
//! recover are recorded as lost, and queries touching them fail with
//! [`FcError::QueryFailed`] while the rest of their batch completes.
//!
//! ```
//! use fc_bits::BitVec;
//! use flash_cosmos::device::{FlashCosmosDevice, StoreHints};
//! use flash_cosmos::recovery::FaultPlan;
//! use flash_cosmos::Expr;
//! use fc_ssd::SsdConfig;
//!
//! let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
//! dev.enable_parity();
//! let data = BitVec::from_fn(256, |i| i % 3 == 0);
//! let h = dev.fc_write("a", &data, StoreHints::and_group("g")).unwrap();
//! // Corrupt the block holding the operand: its raw page would read back
//! // silently wrong, so injection rebuilds it from parity on the spot.
//! let report = dev.inject_faults(&FaultPlan::new().stuck_block("a", 0)).unwrap();
//! assert_eq!(report.rebuilt_pages, 1);
//! let (result, _) = dev.fc_read(&Expr::var(h.id)).unwrap();
//! assert_eq!(result, data);
//! ```

use std::collections::{HashMap, HashSet, VecDeque};

use fc_bits::BitVec;
use fc_nand::geometry::BlockAddr;
use fc_nand::rber::BlockGrade;
use fc_nand::stress::StressState;
use fc_ssd::device::{DeviceError, WriteOptions};
use fc_ssd::ftl::{GroupKey, PageMeta, PlacementHint};
use fc_ssd::parity::{rebuild_member, xor_fold, StripeMap};
use fc_ssd::pipeline::DieQueues;
use fc_ssd::topology::{DieId, Ppa};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::device::{DeviceCore, FcError, FlashCosmosDevice};
use crate::expr::OperandId;

/// FTL group-index namespace for parity pages (one group per plane).
/// Regular placement groups are numbered sequentially from zero, so the
/// high-bit bases can never collide with them.
const PARITY_GROUP_BASE: u64 = 1 << 40;
/// FTL group-index namespace for rebuild rewrites (one group per plane).
const REBUILD_GROUP_BASE: u64 = 1 << 41;

/// Device-wide reliability snapshot: the SSD's read-health counters plus
/// this module's recovery counters, so one struct answers "which tiers
/// fired and how often".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceHealth {
    /// Logical page reads served by the SSD.
    pub reads: u64,
    /// Bits the ECC decoder corrected (nominal and retry reads).
    pub bits_corrected: u64,
    /// Re-senses issued at shifted Vref levels (tier 1).
    pub retry_reads: u64,
    /// Reads recovered by the retry ladder (tier 1 successes).
    pub retry_recoveries: u64,
    /// Reads that exhausted the retry ladder (tier 1 failures — these
    /// escalate to parity rebuild where a stripe exists).
    pub uncorrectable_reads: u64,
    /// Pages rebuilt from cross-die parity (tier 2 successes).
    pub parity_rebuilds: u64,
    /// Pages refreshed by retention scrubbing.
    pub pages_scrubbed: u64,
    /// Pages rewritten out-of-place by recovery (rebuilds + refreshes
    /// that relocated data).
    pub relocations: u64,
    /// Pages that stayed unreadable after every tier — permanent data
    /// loss, surfaced per query as [`FcError::QueryFailed`].
    pub uncorrectable_after_recovery: u64,
}

/// Tuning for the retention scrubber.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubConfig {
    /// Queue a page when its predicted worst-grade RBER reaches this
    /// fraction of the ECC correction margin (t/n). The default 0.02
    /// separates heavily aged pages (percent-level fractions) from fresh
    /// ones (sub-percent) under the calibrated physics model.
    pub margin_fraction: f64,
    /// Upper bound on pages queued per scheduling pass.
    pub max_per_pass: usize,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        Self { margin_fraction: 0.02, max_per_pass: 64 }
    }
}

/// One mapped ECC page the scrub scheduler is considering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubCandidate {
    /// The logical page.
    pub lpn: u64,
    /// Flat die index the page currently lives on.
    pub die: usize,
    /// Modeled worst-grade RBER under the block's current stress state.
    pub predicted_rber: f64,
    /// The ECC correction margin (t/n) the prediction is compared to.
    pub margin: f64,
}

/// Picks which scrub candidates to queue — same policy/mechanism split
/// as [`crate::maintenance::RegroupPolicy`].
pub trait ScrubPolicy: std::fmt::Debug + Send + Sync {
    /// Returns the indices of `candidates` to queue, in scrub order.
    fn select(&self, candidates: &[ScrubCandidate], cfg: &ScrubConfig) -> Vec<usize>;
}

/// Default policy: queue pages whose predicted RBER is at least
/// `margin_fraction` of the ECC margin, most-at-risk first, capped at
/// `max_per_pass`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MarginScrubber;

impl ScrubPolicy for MarginScrubber {
    fn select(&self, candidates: &[ScrubCandidate], cfg: &ScrubConfig) -> Vec<usize> {
        let mut picks: Vec<usize> = (0..candidates.len())
            .filter(|&i| candidates[i].predicted_rber >= cfg.margin_fraction * candidates[i].margin)
            .collect();
        picks.sort_by(|&a, &b| {
            candidates[b].predicted_rber.total_cmp(&candidates[a].predicted_rber)
        });
        picks.truncate(cfg.max_per_pass);
        picks
    }
}

/// A queued page refresh.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScrubJob {
    pub(crate) lpn: u64,
}

/// A named durable record stored through the conventional (SLC +
/// randomized + ECC) path.
#[derive(Debug, Clone)]
pub(crate) struct DurableRecord {
    pub(crate) lpns: Vec<u64>,
    pub(crate) bits: usize,
}

/// A deterministic, typed fault-injection plan: build one with the
/// chained constructors, then apply it atomically with
/// [`FlashCosmosDevice::inject_faults`]. All names and die indices are
/// validated before anything mutates.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub(crate) retention_months: Option<f64>,
    pub(crate) disturbs: Vec<(String, u64)>,
    pub(crate) ages: Vec<(String, u32)>,
    pub(crate) stuck_blocks: Vec<(String, usize)>,
    pub(crate) failed_dies: Vec<usize>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the device-wide retention age (months at 30 °C equivalent).
    /// Retention is chip-global, so applying it bumps the device epoch
    /// instead of itemized generations.
    #[must_use]
    pub fn retention(mut self, months: f64) -> Self {
        self.retention_months = Some(months);
        self
    }

    /// Adds read-disturb stress: `reads` extra senses on every distinct
    /// block holding pages of the named operand or durable record.
    #[must_use]
    pub fn disturb(mut self, name: &str, reads: u64) -> Self {
        self.disturbs.push((name.to_string(), reads));
        self
    }

    /// Adds P/E wear: `cycles` program/erase cycles on every distinct
    /// block holding pages of the named target (stored data is kept —
    /// this models a block that was heavily cycled before the data
    /// landed on it).
    ///
    /// **Wear stacks on shared blocks.** Each `age` entry cycles the
    /// *physical blocks* of its target, so when several plan entries
    /// resolve to the same block — two co-resident names (grouped
    /// operands share blocks stripe-by-stripe; striped durable records
    /// interleave into shared blocks), or the same name listed twice —
    /// that block receives the **sum** of all the entries' cycles, not
    /// the maximum. This is deliberate: the plan reads as a sequence of
    /// physical conditioning steps, and a block that hosted two heavily
    /// cycled tenants really did absorb both histories. Aging one name
    /// of a co-resident set therefore ages its neighbors' blocks too;
    /// budget the per-entry cycles for the whole set, or place targets
    /// in distinct groups when independent wear is wanted.
    #[must_use]
    pub fn age(mut self, name: &str, cycles: u32) -> Self {
        self.ages.push((name.to_string(), cycles));
        self
    }

    /// Marks the block holding stripe page `slot` of the named target as
    /// having stuck columns (a deterministic ~12.5%-density column mask
    /// seeded from the block address). Mapped pages in the block are
    /// rebuilt from parity at injection time; unrebuildable ones are
    /// recorded as lost.
    #[must_use]
    pub fn stuck_block(mut self, name: &str, slot: usize) -> Self {
        self.stuck_blocks.push((name.to_string(), slot));
        self
    }

    /// Fails an entire die (flat index): every block reads back zeros.
    /// Mapped pages on the die are rebuilt from parity at injection
    /// time; the die is excluded from future placement.
    #[must_use]
    pub fn fail_die(mut self, die: usize) -> Self {
        self.failed_dies.push(die);
        self
    }
}

/// What [`FlashCosmosDevice::inject_faults`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Operands whose generation was bumped (sorted, deduplicated).
    pub touched_operands: Vec<OperandId>,
    /// Pages rebuilt from parity during injection.
    pub rebuilt_pages: u64,
    /// Pages no recovery tier could save (now permanently lost).
    pub lost_pages: u64,
    /// Whether the device epoch was bumped (global retention change).
    pub epoch_bumped: bool,
}

/// Reliability state carried by [`FlashCosmosDevice`]: parity stripes,
/// the durable-record catalog, the scrub queue and recovery counters.
pub(crate) struct RecoveryState {
    pub(crate) stripes: StripeMap,
    pub(crate) next_stripe_id: u64,
    pub(crate) parity_enabled: bool,
    /// Pages written per plane into the parity group (overflow counter).
    parity_fill: HashMap<usize, u64>,
    /// Pages written per plane into the rebuild group (overflow counter).
    rebuild_fill: HashMap<usize, u64>,
    pub(crate) durables: HashMap<String, DurableRecord>,
    /// Pages that stayed unreadable after every tier.
    pub(crate) lost_pages: HashSet<u64>,
    /// Dies failed via [`FaultPlan::fail_die`] — excluded from recovery
    /// placement.
    pub(crate) failed_dies: HashSet<usize>,
    pub(crate) scrub_queue: VecDeque<ScrubJob>,
    /// Per-page stress fingerprint `(block PEC, retention bits)` at the
    /// last refresh — retention is chip-global and survives a refresh,
    /// so without this a hot page would re-queue forever.
    scrub_done: HashMap<u64, (u32, u64)>,
    pub(crate) scrub_cfg: ScrubConfig,
    pub(crate) scrub_policy: Box<dyn ScrubPolicy>,
    pub(crate) parity_rebuilds: u64,
    pub(crate) pages_scrubbed: u64,
    pub(crate) relocations: u64,
    pub(crate) uncorrectable_after_recovery: u64,
}

impl std::fmt::Debug for RecoveryState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryState")
            .field("stripes", &self.stripes.len())
            .field("parity_enabled", &self.parity_enabled)
            .field("durables", &self.durables.len())
            .field("lost_pages", &self.lost_pages.len())
            .field("failed_dies", &self.failed_dies)
            .field("scrub_queue", &self.scrub_queue.len())
            .finish_non_exhaustive()
    }
}

impl Default for RecoveryState {
    fn default() -> Self {
        Self {
            stripes: StripeMap::default(),
            next_stripe_id: 0,
            parity_enabled: false,
            parity_fill: HashMap::new(),
            rebuild_fill: HashMap::new(),
            durables: HashMap::new(),
            lost_pages: HashSet::new(),
            failed_dies: HashSet::new(),
            scrub_queue: VecDeque::new(),
            scrub_done: HashMap::new(),
            scrub_cfg: ScrubConfig::default(),
            scrub_policy: Box::new(MarginScrubber),
            parity_rebuilds: 0,
            pages_scrubbed: 0,
            relocations: 0,
            uncorrectable_after_recovery: 0,
        }
    }
}

impl DeviceCore {
    /// Turns on cross-die parity protection for *subsequent* writes
    /// (`fc_write`, `fc_overwrite`, [`Self::store_durable`]): stored
    /// pages join XOR stripes whose members sit on pairwise-distinct
    /// dies, with the parity page on a die outside the stripe.
    pub fn enable_parity(&mut self) {
        self.recovery.parity_enabled = true;
    }

    /// Whether new writes are parity-protected.
    pub fn parity_enabled(&self) -> bool {
        self.recovery.parity_enabled
    }

    /// Number of live parity stripes.
    pub fn stripe_count(&self) -> usize {
        self.recovery.stripes.len()
    }

    /// Pages currently queued for a scrub refresh.
    pub fn pending_scrub(&self) -> usize {
        self.recovery.scrub_queue.len()
    }

    /// Pages that stayed unreadable after every recovery tier.
    pub fn lost_page_count(&self) -> usize {
        self.recovery.lost_pages.len()
    }

    /// Whether a query on this page would fail (used by the batch
    /// executor's per-query isolation pre-pass).
    pub(crate) fn is_lost_page(&self, lpn: u64) -> bool {
        self.recovery.lost_pages.contains(&lpn)
    }

    /// Replaces the scrub tuning.
    pub fn set_scrub_config(&mut self, cfg: ScrubConfig) {
        self.recovery.scrub_cfg = cfg;
    }

    /// The current scrub tuning.
    pub fn scrub_config(&self) -> ScrubConfig {
        self.recovery.scrub_cfg
    }

    /// Installs a scrub-selection policy (default: [`MarginScrubber`]).
    pub fn set_scrub_policy(&mut self, policy: Box<dyn ScrubPolicy>) {
        self.recovery.scrub_policy = policy;
    }

    /// The device-wide reliability snapshot: SSD read-health counters
    /// merged with this module's recovery counters.
    pub fn health(&self) -> DeviceHealth {
        let h = self.ssd.health();
        DeviceHealth {
            reads: h.reads,
            bits_corrected: h.bits_corrected,
            retry_reads: h.retry_reads,
            retry_recoveries: h.retry_recoveries,
            uncorrectable_reads: h.uncorrectable,
            parity_rebuilds: self.recovery.parity_rebuilds,
            pages_scrubbed: self.recovery.pages_scrubbed,
            relocations: self.recovery.relocations,
            uncorrectable_after_recovery: self.recovery.uncorrectable_after_recovery,
        }
    }

    // ------------------------------------------------------------------
    // Parity stripes
    // ------------------------------------------------------------------

    /// Groups freshly written pages into die-disjoint XOR stripes and
    /// writes one parity page per stripe. No-op unless parity is
    /// enabled. Chunks greedily: a stripe closes when adding the next
    /// page would repeat a die or exceed `total_dies − 1` members, so a
    /// single-die fault can corrupt at most one member per stripe (the
    /// property rebuild correctness rests on).
    pub(crate) fn parity_protect_lpns(&mut self, lpns: &[u64]) -> Result<(), FcError> {
        if !self.recovery.parity_enabled || lpns.is_empty() {
            return Ok(());
        }
        let cap = self.ssd.config().total_dies().saturating_sub(1).max(1);
        let mut chunk: Vec<u64> = Vec::new();
        let mut chunk_dies: HashSet<usize> = HashSet::new();
        let mut chunks: Vec<(Vec<u64>, HashSet<usize>)> = Vec::new();
        for &lpn in lpns {
            let die = match self.ssd.translate(lpn) {
                Some(ppa) => ppa.plane.die.flat(self.ssd.config()),
                None => continue,
            };
            if chunk.len() >= cap || chunk_dies.contains(&die) {
                chunks.push((std::mem::take(&mut chunk), std::mem::take(&mut chunk_dies)));
            }
            chunk.push(lpn);
            chunk_dies.insert(die);
        }
        if !chunk.is_empty() {
            chunks.push((chunk, chunk_dies));
        }
        for (members, dies) in chunks {
            let mut payloads = Vec::with_capacity(members.len());
            for &m in &members {
                payloads.push(self.ssd.read(m)?);
            }
            let parity = xor_fold(payloads.iter());
            let conventional =
                self.ssd.page_meta(members[0]).expect("freshly written pages carry metadata").ecc;
            let plane = self.healthy_plane(&dies);
            let parity_lpn = self.parity_write(&parity, conventional, plane)?;
            let id = self.recovery.next_stripe_id;
            self.recovery.next_stripe_id += 1;
            self.recovery.stripes.insert(id, members, parity_lpn);
        }
        Ok(())
    }

    /// Removes the stripes protecting any of `lpns` and trims their
    /// parity pages (callers re-protect after rewriting).
    pub(crate) fn parity_unprotect_lpns(&mut self, lpns: &[u64]) {
        let mut ids: Vec<u64> = lpns
            .iter()
            .filter_map(|&l| self.recovery.stripes.stripe_of_member(l).map(|(id, _)| id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            if let Some(stripe) = self.recovery.stripes.remove(id) {
                self.ssd.trim(stripe.parity_lpn);
            }
        }
    }

    /// Writes one parity page on `plane` through the plane's shared
    /// parity group (so parity pages fill blocks instead of taking one
    /// block each).
    fn parity_write(
        &mut self,
        payload: &BitVec,
        conventional: bool,
        plane: usize,
    ) -> Result<u64, FcError> {
        let wls = self.ssd.config().wls_per_block as u64;
        let fill = self.recovery.parity_fill.entry(plane).or_insert(0);
        let overflow = *fill / wls;
        *fill += 1;
        let key = GroupKey { group: PARITY_GROUP_BASE + plane as u64, slot: 0, overflow };
        let meta =
            if conventional { PageMeta::conventional() } else { PageMeta::flash_cosmos(false) };
        let lpn = self.alloc_lpn();
        self.ssd.write(
            lpn,
            payload,
            WriteOptions {
                placement: PlacementHint::Grouped { group: key, plane: Some(plane) },
                meta,
            },
        )?;
        Ok(lpn)
    }

    /// Refresh target plane for a parity-stripe page: the least-pressure
    /// healthy plane on a die disjoint from the rest of the page's
    /// stripe, so retention refreshes preserve the die-disjointness that
    /// rebuild correctness (and the device audit's `FC102`) rests on.
    /// `None` for pages outside every stripe — those refresh through the
    /// ordinary striped round-robin.
    fn stripe_refresh_plane(&self, lpn: u64) -> Option<usize> {
        let cfg = self.ssd.config();
        let avoid: HashSet<usize> =
            if let Some((_, stripe)) = self.recovery.stripes.stripe_of_member(lpn) {
                stripe
                    .members
                    .iter()
                    .filter(|&&m| m != lpn)
                    .copied()
                    .chain(std::iter::once(stripe.parity_lpn))
                    .filter_map(|l| self.ssd.translate(l))
                    .map(|p| p.plane.die.flat(cfg))
                    .collect()
            } else if let Some((_, stripe)) = self.recovery.stripes.stripe_of_parity(lpn) {
                stripe
                    .members
                    .iter()
                    .filter_map(|&m| self.ssd.translate(m))
                    .map(|p| p.plane.die.flat(cfg))
                    .collect()
            } else {
                return None;
            };
        Some(self.healthy_plane(&avoid))
    }

    /// Least-pressure plane whose die is healthy and (when possible) not
    /// in `avoid` — the fallback ladder keeps recovery making progress
    /// even when disjointness cannot be honored.
    fn healthy_plane(&self, avoid: &HashSet<usize>) -> usize {
        let ppd = self.ssd.config().planes_per_die;
        let pressures = self.ssd.plane_pressures();
        let mut best: Option<(u32, usize)> = None;
        let mut healthy: Option<(u32, usize)> = None;
        let mut any: Option<(u32, usize)> = None;
        for (plane, &p) in pressures.iter().enumerate() {
            let die = plane / ppd;
            let entry = (p, plane);
            if any.is_none_or(|b| entry < b) {
                any = Some(entry);
            }
            if !self.recovery.failed_dies.contains(&die) {
                if healthy.is_none_or(|b| entry < b) {
                    healthy = Some(entry);
                }
                if !avoid.contains(&die) && best.is_none_or(|b| entry < b) {
                    best = Some(entry);
                }
            }
        }
        best.or(healthy).or(any).expect("SSDs have at least one plane").1
    }

    // ------------------------------------------------------------------
    // Tier-2 rebuild
    // ------------------------------------------------------------------

    /// Rebuilds one page from its stripe (member from peers + parity;
    /// parity from members) and rewrites it out-of-place on a healthy
    /// die. Returns the recovered payload.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Uncorrectable`] (wrapped) when the page is in no
    /// stripe; peer-read errors propagate (a second fault in the same
    /// stripe is beyond single-parity recovery).
    pub(crate) fn rebuild_lpn(&mut self, lpn: u64) -> Result<BitVec, FcError> {
        if let Some((_, stripe)) = self.recovery.stripes.stripe_of_member(lpn) {
            let stripe = stripe.clone();
            let mut peers = Vec::new();
            let mut avoid = HashSet::new();
            for &m in &stripe.members {
                if m == lpn {
                    continue;
                }
                if let Some(ppa) = self.ssd.translate(m) {
                    avoid.insert(ppa.plane.die.flat(self.ssd.config()));
                }
                peers.push(self.ssd.read(m)?);
            }
            if let Some(ppa) = self.ssd.translate(stripe.parity_lpn) {
                avoid.insert(ppa.plane.die.flat(self.ssd.config()));
            }
            let parity = self.ssd.read(stripe.parity_lpn)?;
            let payload = rebuild_member(peers.iter(), &parity);
            self.relocate_rebuilt(lpn, &payload, &avoid)?;
            self.recovery.parity_rebuilds += 1;
            Ok(payload)
        } else if let Some((_, stripe)) = self.recovery.stripes.stripe_of_parity(lpn) {
            let stripe = stripe.clone();
            let mut payloads = Vec::with_capacity(stripe.members.len());
            let mut avoid = HashSet::new();
            for &m in &stripe.members {
                if let Some(ppa) = self.ssd.translate(m) {
                    avoid.insert(ppa.plane.die.flat(self.ssd.config()));
                }
                payloads.push(self.ssd.read(m)?);
            }
            let payload = xor_fold(payloads.iter());
            self.relocate_rebuilt(lpn, &payload, &avoid)?;
            self.recovery.parity_rebuilds += 1;
            Ok(payload)
        } else {
            Err(FcError::Device(DeviceError::Uncorrectable { lpn }))
        }
    }

    /// Rewrites a rebuilt page out-of-place (same LPN, same metadata,
    /// fresh block on a healthy plane avoiding `avoid` dies) and patches
    /// operand placement records if the page belongs to one.
    fn relocate_rebuilt(
        &mut self,
        lpn: u64,
        payload: &BitVec,
        avoid: &HashSet<usize>,
    ) -> Result<(), FcError> {
        let meta = self.ssd.page_meta(lpn).expect("rebuilt pages are mapped");
        let plane = self.healthy_plane(avoid);
        let wls = self.ssd.config().wls_per_block as u64;
        let fill = self.recovery.rebuild_fill.entry(plane).or_insert(0);
        let overflow = *fill / wls;
        *fill += 1;
        let key = GroupKey { group: REBUILD_GROUP_BASE + plane as u64, slot: 0, overflow };
        self.ssd.trim(lpn);
        self.ssd.write(
            lpn,
            payload,
            WriteOptions {
                placement: PlacementHint::Grouped { group: key, plane: Some(plane) },
                meta,
            },
        )?;
        self.recovery.relocations += 1;
        if let Some((id, slot)) = self.operand_of_lpn(lpn) {
            let ppa = self.ssd.translate(lpn).expect("just rewritten");
            self.operands[id].planes[slot] = ppa.plane;
            self.operands[id].dies[slot] = ppa.plane.die;
            self.bump_generation(id);
        }
        Ok(())
    }

    /// The operand owning a logical page, with its stripe slot.
    pub(crate) fn operand_of_lpn(&self, lpn: u64) -> Option<(OperandId, usize)> {
        self.operands
            .iter()
            .enumerate()
            .find_map(|(id, r)| r.lpns.iter().position(|&l| l == lpn).map(|slot| (id, slot)))
    }

    // ------------------------------------------------------------------
    // Durable records (the conventional storage tier)
    // ------------------------------------------------------------------

    /// Stores a named durable record through the conventional path
    /// (SLC with randomization and ECC, striped placement) — the data
    /// that *needs* the recovery tiers, unlike ESP operand pages whose
    /// modeled RBER is zero. Parity-protected when parity is enabled.
    ///
    /// # Errors
    ///
    /// [`FcError::DuplicateName`] when the name is taken (by a durable
    /// record or an operand), plus SSD write errors.
    pub fn store_durable(&mut self, name: &str, data: &BitVec) -> Result<(), FcError> {
        if self.recovery.durables.contains_key(name) || self.operand(name).is_some() {
            return Err(FcError::DuplicateName(name.to_string()));
        }
        let chunk_bits = self.ssd.logical_page_bits(true);
        let pages = data.len().div_ceil(chunk_bits).max(1);
        let mut lpns = Vec::with_capacity(pages);
        for i in 0..pages {
            let start = i * chunk_bits;
            let len = chunk_bits.min(data.len().saturating_sub(start));
            let mut page = BitVec::zeros(chunk_bits);
            if len > 0 {
                page.copy_from(0, &data.slice(start, len));
            }
            let lpn = self.alloc_lpn();
            self.ssd.write(lpn, &page, WriteOptions::conventional())?;
            lpns.push(lpn);
        }
        self.recovery
            .durables
            .insert(name.to_string(), DurableRecord { lpns: lpns.clone(), bits: data.len() });
        self.parity_protect_lpns(&lpns)
    }

    /// Reads a durable record back, escalating each page through the
    /// recovery tiers: the SSD's built-in retry ladder first, then
    /// parity rebuild on ladder exhaustion.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownName`] for unknown records; a wrapped
    /// [`DeviceError::Uncorrectable`] when a page stayed unreadable
    /// after every tier (it is then recorded as lost).
    pub fn read_durable(&mut self, name: &str) -> Result<BitVec, FcError> {
        let rec = self
            .recovery
            .durables
            .get(name)
            .cloned()
            .ok_or_else(|| FcError::UnknownName(name.to_string()))?;
        let chunk_bits = self.ssd.logical_page_bits(true);
        let mut out = BitVec::zeros(rec.lpns.len() * chunk_bits);
        for (i, &lpn) in rec.lpns.iter().enumerate() {
            let page = match self.ssd.read(lpn) {
                Ok(p) => p,
                Err(DeviceError::Uncorrectable { .. }) => match self.rebuild_lpn(lpn) {
                    Ok(p) => p,
                    Err(e) => {
                        self.recovery.lost_pages.insert(lpn);
                        self.recovery.uncorrectable_after_recovery += 1;
                        return Err(e);
                    }
                },
                Err(e) => return Err(e.into()),
            };
            out.copy_from(i * chunk_bits, &page);
        }
        Ok(out.slice(0, rec.bits))
    }

    /// Replaces a durable record's contents (the new data may have a
    /// different length). Old pages are unprotected and trimmed; the new
    /// pages are parity-protected when parity is enabled.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownName`] for unknown records, plus SSD write
    /// errors.
    pub fn overwrite_durable(&mut self, name: &str, data: &BitVec) -> Result<(), FcError> {
        let rec = self
            .recovery
            .durables
            .get(name)
            .cloned()
            .ok_or_else(|| FcError::UnknownName(name.to_string()))?;
        self.parity_unprotect_lpns(&rec.lpns);
        for &lpn in &rec.lpns {
            self.ssd.trim(lpn);
            self.recovery.lost_pages.remove(&lpn);
            self.recovery.scrub_done.remove(&lpn);
        }
        self.recovery.durables.remove(name);
        self.store_durable(name, data)
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Applies a [`FaultPlan`]: validates every named target and die
    /// index first, then injects each fault through the chip APIs.
    /// Itemized faults (wear, disturb, stuck blocks, die failures) bump
    /// only the touched operands' generations; a global retention change
    /// bumps the device epoch. Stuck-block and die faults proactively
    /// rebuild every mapped page in the faulted region — raw ESP pages
    /// corrupt *silently*, so waiting for a read error would be too
    /// late.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownName`] / [`FcError::DieOutOfRange`] from
    /// validation (nothing mutated), or propagated device errors from
    /// rebuild rewrites.
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<FaultReport, FcError> {
        let dies = self.ssd.config().total_dies();
        for &die in &plan.failed_dies {
            if die >= dies {
                return Err(FcError::DieOutOfRange { die, dies });
            }
        }
        for name in plan
            .ages
            .iter()
            .map(|(n, _)| n)
            .chain(plan.disturbs.iter().map(|(n, _)| n))
            .chain(plan.stuck_blocks.iter().map(|(n, _)| n))
        {
            self.fault_target(name)?;
        }

        let mut report = FaultReport::default();
        let mut touched: Vec<OperandId> = Vec::new();

        if let Some(months) = plan.retention_months {
            // Retention is chip-global: every page's read behavior may
            // change, which per-operand generations cannot express.
            self.bump_epoch();
            self.ssd.set_retention_months(months);
            report.epoch_bumped = true;
        }
        for (name, cycles) in &plan.ages {
            let (lpns, id) = self.fault_target(name)?;
            for (die, block) in self.distinct_blocks(&lpns) {
                let die_id = DieId::from_flat(die, self.ssd.config());
                self.ssd.chip_mut(die_id).cycle_block(block, *cycles).map_err(DeviceError::Nand)?;
            }
            if let Some(id) = id {
                self.bump_generation(id);
                touched.push(id);
            }
        }
        for (name, reads) in &plan.disturbs {
            let (lpns, id) = self.fault_target(name)?;
            for (die, block) in self.distinct_blocks(&lpns) {
                let die_id = DieId::from_flat(die, self.ssd.config());
                self.ssd
                    .chip_mut(die_id)
                    .add_block_reads(block, *reads)
                    .map_err(DeviceError::Nand)?;
            }
            if let Some(id) = id {
                self.bump_generation(id);
                touched.push(id);
            }
        }
        for (name, slot) in &plan.stuck_blocks {
            let (lpns, _) = self.fault_target(name)?;
            let Some(&lpn) = lpns.get(*slot) else { continue };
            let Some(ppa) = self.ssd.translate(lpn) else { continue };
            let page_bits = self.ssd.config().page_bits();
            let die = ppa.plane.die.flat(self.ssd.config());
            let block = BlockAddr::new(ppa.plane.plane, ppa.block);
            // Deterministic per-block corruption pattern: same plan, same
            // placement → bit-identical fault, replayable in CI.
            let seed = 0x57C0_0000u64
                ^ ((die as u64) << 32)
                ^ (u64::from(ppa.plane.plane) << 16)
                ^ u64::from(ppa.block);
            let mut rng = StdRng::seed_from_u64(seed);
            let mask = BitVec::random_with_density(page_bits, 0.125, &mut rng);
            let value = BitVec::random(page_bits, &mut rng);
            let die_id = ppa.plane.die;
            self.ssd
                .chip_mut(die_id)
                .set_block_stuck(block, mask, value)
                .map_err(DeviceError::Nand)?;
            self.rebuild_mapped_where(
                |p| p.plane == ppa.plane && p.block == ppa.block,
                &mut report,
                &mut touched,
            )?;
        }
        for &die in &plan.failed_dies {
            self.recovery.failed_dies.insert(die);
            let page_bits = self.ssd.config().page_bits();
            let planes = self.ssd.config().planes_per_die;
            let blocks = self.ssd.config().blocks_per_plane;
            let die_id = DieId::from_flat(die, self.ssd.config());
            for plane in 0..planes {
                for b in 0..blocks {
                    let block = BlockAddr::new(plane as u32, b as u32);
                    self.ssd
                        .chip_mut(die_id)
                        .set_block_stuck(
                            block,
                            BitVec::zeros(page_bits).not(),
                            BitVec::zeros(page_bits),
                        )
                        .map_err(DeviceError::Nand)?;
                }
            }
            self.rebuild_mapped_where(|p| p.plane.die == die_id, &mut report, &mut touched)?;
        }
        touched.sort_unstable();
        touched.dedup();
        report.touched_operands = touched;
        Ok(report)
    }

    /// Resolves a fault-plan name to the pages it covers: operands
    /// first, then durable records.
    fn fault_target(&self, name: &str) -> Result<(Vec<u64>, Option<OperandId>), FcError> {
        if let Some(h) = self.operand(name) {
            return Ok((self.operands[h.id].lpns.clone(), Some(h.id)));
        }
        if let Some(rec) = self.recovery.durables.get(name) {
            return Ok((rec.lpns.clone(), None));
        }
        Err(FcError::UnknownName(name.to_string()))
    }

    /// The distinct physical blocks holding any of `lpns`, as
    /// `(flat die, block address)` pairs.
    fn distinct_blocks(&self, lpns: &[u64]) -> Vec<(usize, BlockAddr)> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &lpn in lpns {
            if let Some(ppa) = self.ssd.translate(lpn) {
                let die = ppa.plane.die.flat(self.ssd.config());
                if seen.insert((die, ppa.plane.plane, ppa.block)) {
                    out.push((die, BlockAddr::new(ppa.plane.plane, ppa.block)));
                }
            }
        }
        out
    }

    /// Rebuilds every mapped page whose physical address matches `pred`
    /// (pages already recorded lost are skipped). Unrebuildable pages
    /// are recorded lost; owners of every touched page get a generation
    /// bump so cached results cannot mask either the relocation or the
    /// loss.
    fn rebuild_mapped_where(
        &mut self,
        pred: impl Fn(Ppa) -> bool,
        report: &mut FaultReport,
        touched: &mut Vec<OperandId>,
    ) -> Result<(), FcError> {
        let victims: Vec<u64> = self
            .ssd
            .mapped_snapshot()
            .into_iter()
            .filter(|&(lpn, ppa, _)| pred(ppa) && !self.recovery.lost_pages.contains(&lpn))
            .map(|(lpn, _, _)| lpn)
            .collect();
        for lpn in victims {
            match self.rebuild_lpn(lpn) {
                Ok(_) => report.rebuilt_pages += 1,
                Err(_) => {
                    self.recovery.lost_pages.insert(lpn);
                    self.recovery.uncorrectable_after_recovery += 1;
                    report.lost_pages += 1;
                }
            }
            if let Some((id, _)) = self.operand_of_lpn(lpn) {
                self.bump_generation(id);
                touched.push(id);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Retention scrubbing
    // ------------------------------------------------------------------

    /// Walks every mapped ECC page, predicts its worst-grade RBER from
    /// the block's current stress state, and queues the pages the
    /// installed [`ScrubPolicy`] selects. Returns how many were queued.
    ///
    /// Raw ESP operand pages are skipped: their modeled RBER is exactly
    /// zero (§5.2) and their protection is the parity tier.
    pub fn schedule_scrub(&mut self) -> usize {
        let cfg = self.recovery.scrub_cfg;
        let candidates = self.scrub_candidates();
        let picks = self.recovery.scrub_policy.select(&candidates, &cfg);
        let mut queued_now = 0;
        for i in picks {
            if let Some(c) = candidates.get(i) {
                self.recovery.scrub_queue.push_back(ScrubJob { lpn: c.lpn });
                queued_now += 1;
            }
        }
        queued_now
    }

    /// The read-only half of [`Self::schedule_scrub`]: every mapped ECC
    /// page's worst-grade RBER prediction, minus pages already queued,
    /// lost, stuck, on a failed die, or scrub-done at their current
    /// stress fingerprint.
    fn scrub_candidates(&self) -> Vec<ScrubCandidate> {
        let margin = self.ssd.ecc_correction_margin();
        let queued: HashSet<u64> = self.recovery.scrub_queue.iter().map(|j| j.lpn).collect();
        let mut candidates: Vec<ScrubCandidate> = Vec::new();
        for (lpn, ppa, meta) in self.ssd.mapped_snapshot() {
            if !meta.ecc || queued.contains(&lpn) || self.recovery.lost_pages.contains(&lpn) {
                continue;
            }
            let die = ppa.plane.die.flat(self.ssd.config());
            if self.recovery.failed_dies.contains(&die) {
                continue;
            }
            let chip = self.ssd.chip(ppa.plane.die);
            let block = BlockAddr::new(ppa.plane.plane, ppa.block);
            if chip.block_stuck(block).is_some() {
                continue; // refresh cannot help stuck columns — parity's job
            }
            let stress = StressState {
                pec: chip.block_pec(block).unwrap_or(0),
                retention_months: chip.retention_months(),
                reads_since_program: chip.block_reads_since_program(block).unwrap_or(0),
            };
            let fingerprint = (stress.pec, stress.retention_months.to_bits());
            if self.recovery.scrub_done.get(&lpn) == Some(&fingerprint) {
                continue;
            }
            let predicted = chip.config().rber.rber_graded(
                meta.scheme,
                meta.randomized,
                stress,
                BlockGrade::Worst,
            );
            candidates.push(ScrubCandidate { lpn, die, predicted_rber: predicted, margin });
        }
        candidates
    }

    /// Whether a [`Self::schedule_scrub`] pass would queue anything
    /// right now — the drain's read-locked phase asks this to decide if
    /// the write-locked background tail is worth taking at all.
    pub(crate) fn scrub_would_schedule(&self) -> bool {
        let candidates = self.scrub_candidates();
        if candidates.is_empty() {
            return false;
        }
        !self.recovery.scrub_policy.select(&candidates, &self.recovery.scrub_cfg).is_empty()
    }

    /// Executes queued scrub jobs within a die-time budget: each refresh
    /// models a read on the source die plus a program on the target die
    /// and is admitted through [`DieQueues::try_fill`] — jobs that do
    /// not fit are deferred (skip-over) to the next pass, exactly like
    /// maintenance jobs. Returns `(pages refreshed, jobs deferred)`.
    ///
    /// A refresh is a [`SsdDevice::migrate`](fc_ssd::device::SsdDevice::migrate)
    /// to striped placement: randomized pages always rewrite through the
    /// controller, which runs the full retry ladder; a refresh that
    /// still fails escalates to parity rebuild.
    pub(crate) fn execute_scrub(
        &mut self,
        queues: &mut DieQueues,
        budget_us: f64,
    ) -> Result<(u64, usize), FcError> {
        let tr = self.ssd.config().tr_us;
        let tprog = self.ssd.config().tprog_slc_us;
        let ppd = self.ssd.config().planes_per_die;
        let mut scrubbed = 0u64;
        let mut deferred: Vec<ScrubJob> = Vec::new();
        while let Some(job) = self.recovery.scrub_queue.pop_front() {
            let Some(ppa) = self.ssd.translate(job.lpn) else { continue };
            let meta = self.ssd.page_meta(job.lpn).expect("mapped pages carry metadata");
            let src = ppa.plane.die.flat(self.ssd.config());
            let stripe_plane = self.stripe_refresh_plane(job.lpn);
            let tgt =
                stripe_plane.unwrap_or_else(|| self.ssd.next_striped_plane_for(job.lpn)) / ppd;
            let work: Vec<(usize, f64)> =
                if src == tgt { vec![(src, tr + tprog)] } else { vec![(src, tr), (tgt, tprog)] };
            if !queues.try_fill(&work, budget_us) {
                deferred.push(job);
                continue;
            }
            let hint = match stripe_plane {
                Some(plane) => {
                    let wls = self.ssd.config().wls_per_block as u64;
                    let fill = self.recovery.rebuild_fill.entry(plane).or_insert(0);
                    let overflow = *fill / wls;
                    *fill += 1;
                    PlacementHint::Grouped {
                        group: GroupKey {
                            group: REBUILD_GROUP_BASE + plane as u64,
                            slot: 0,
                            overflow,
                        },
                        plane: Some(plane),
                    }
                }
                None => PlacementHint::Striped,
            };
            match self.ssd.migrate(job.lpn, hint, meta) {
                Ok(_) => {}
                Err(DeviceError::Uncorrectable { .. }) => {
                    if self.rebuild_lpn(job.lpn).is_err() {
                        self.recovery.lost_pages.insert(job.lpn);
                        self.recovery.uncorrectable_after_recovery += 1;
                        continue;
                    }
                }
                Err(e) => return Err(e.into()),
            }
            scrubbed += 1;
            self.recovery.pages_scrubbed += 1;
            if let Some(fp) = self.stress_fingerprint(job.lpn) {
                self.recovery.scrub_done.insert(job.lpn, fp);
            }
        }
        let deferred_len = deferred.len();
        self.recovery.scrub_queue.extend(deferred);
        Ok((scrubbed, deferred_len))
    }

    /// Schedules and runs a full scrub pass immediately (no budget) —
    /// the foreground entry point; background refreshes ride along with
    /// the drain instead. Returns pages refreshed.
    ///
    /// # Errors
    ///
    /// Propagates SSD rewrite errors.
    pub fn run_scrub(&mut self) -> Result<u64, FcError> {
        self.schedule_scrub();
        let mut queues = DieQueues::for_config(self.ssd.config());
        let (scrubbed, _) = self.execute_scrub(&mut queues, f64::INFINITY)?;
        Ok(scrubbed)
    }

    /// The page's current stress fingerprint `(block PEC, retention)` —
    /// scrub-done bookkeeping that prevents endless re-queueing.
    fn stress_fingerprint(&self, lpn: u64) -> Option<(u32, u64)> {
        let ppa = self.ssd.translate(lpn)?;
        let chip = self.ssd.chip(ppa.plane.die);
        let block = BlockAddr::new(ppa.plane.plane, ppa.block);
        Some((chip.block_pec(block).ok()?, chip.retention_months().to_bits()))
    }
}

impl FlashCosmosDevice {
    /// Turns on cross-die parity protection for *subsequent* writes
    /// (`fc_write`, `fc_overwrite`, [`Self::store_durable`]): stored
    /// pages join XOR stripes whose members sit on pairwise-distinct
    /// dies, with the parity page on a die outside the stripe.
    pub fn enable_parity(&mut self) {
        self.core_mut().enable_parity();
    }

    /// Whether new writes are parity-protected.
    pub fn parity_enabled(&self) -> bool {
        self.core().parity_enabled()
    }

    /// Number of live parity stripes.
    pub fn stripe_count(&self) -> usize {
        self.core().stripe_count()
    }

    /// Pages currently queued for a scrub refresh.
    pub fn pending_scrub(&self) -> usize {
        self.core().pending_scrub()
    }

    /// Pages that stayed unreadable after every recovery tier.
    pub fn lost_page_count(&self) -> usize {
        self.core().lost_page_count()
    }

    /// Replaces the scrub tuning.
    pub fn set_scrub_config(&mut self, cfg: ScrubConfig) {
        self.core_mut().set_scrub_config(cfg);
    }

    /// The current scrub tuning.
    pub fn scrub_config(&self) -> ScrubConfig {
        self.core().scrub_config()
    }

    /// Installs a scrub-selection policy (default: [`MarginScrubber`]).
    pub fn set_scrub_policy(&mut self, policy: Box<dyn ScrubPolicy>) {
        self.core_mut().set_scrub_policy(policy);
    }

    /// The device-wide reliability snapshot: SSD read-health counters
    /// merged with the recovery counters.
    pub fn health(&self) -> DeviceHealth {
        self.core().health()
    }

    /// Stores a named durable record through the conventional path (SLC
    /// with randomization and ECC, striped placement) — the data that
    /// *needs* the recovery tiers, unlike ESP operand pages whose
    /// modeled RBER is zero. Parity-protected when parity is enabled.
    /// Takes the exclusive device lock.
    ///
    /// # Errors
    ///
    /// [`FcError::DuplicateName`] when the name is taken (by a durable
    /// record or an operand), plus SSD write errors.
    pub fn store_durable(&self, name: &str, data: &BitVec) -> Result<(), FcError> {
        self.core_write().store_durable(name, data)
    }

    /// Reads a durable record back, escalating each page through the
    /// recovery tiers: the SSD's built-in retry ladder first, then
    /// parity rebuild on ladder exhaustion. Takes the exclusive device
    /// lock (recovery escalation relocates pages).
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownName`] for unknown records; a wrapped
    /// [`DeviceError::Uncorrectable`] when a page stayed unreadable
    /// after every tier (it is then recorded as lost).
    pub fn read_durable(&self, name: &str) -> Result<BitVec, FcError> {
        self.core_write().read_durable(name)
    }

    /// Replaces a durable record's contents (the new data may have a
    /// different length). Old pages are unprotected and trimmed; the new
    /// pages are parity-protected when parity is enabled. Takes the
    /// exclusive device lock.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownName`] for unknown records, plus SSD write
    /// errors.
    pub fn overwrite_durable(&self, name: &str, data: &BitVec) -> Result<(), FcError> {
        self.core_write().overwrite_durable(name, data)
    }

    /// Applies a [`FaultPlan`] — see the recovery module docs for the
    /// fault model. Takes the exclusive device lock.
    ///
    /// # Errors
    ///
    /// [`FcError::UnknownName`] / [`FcError::DieOutOfRange`] from
    /// validation (nothing mutated), or propagated device errors from
    /// rebuild rewrites.
    pub fn inject_faults(&self, plan: &FaultPlan) -> Result<FaultReport, FcError> {
        self.core_write().inject_faults(plan)
    }

    /// Walks every mapped ECC page, predicts its worst-grade RBER from
    /// the block's current stress state, and queues the pages the
    /// installed [`ScrubPolicy`] selects. Returns how many were queued.
    /// Takes the exclusive device lock.
    pub fn schedule_scrub(&self) -> usize {
        self.core_write().schedule_scrub()
    }

    /// Schedules and runs a full scrub pass immediately (no budget) —
    /// the foreground entry point; background refreshes ride along with
    /// [`FlashCosmosDevice::drain`] instead. Returns pages refreshed.
    /// Takes the exclusive device lock.
    ///
    /// # Errors
    ///
    /// Propagates SSD rewrite errors.
    pub fn run_scrub(&self) -> Result<u64, FcError> {
        self.core_write().run_scrub()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StoreHints;
    use crate::expr::Expr;
    use fc_ssd::ecc::EccConfig;
    use fc_ssd::SsdConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device() -> FlashCosmosDevice {
        FlashCosmosDevice::new(SsdConfig::tiny_test())
    }

    #[test]
    fn parity_stripes_are_die_disjoint() {
        let mut dev = device();
        dev.enable_parity();
        let mut rng = StdRng::seed_from_u64(1);
        let data = BitVec::random(1024, &mut rng); // 4 pages on 4 dies
        dev.fc_write("a", &data, StoreHints::and_group("g")).unwrap();
        assert!(dev.stripe_count() >= 2, "4 members with cap 3 split into ≥ 2 stripes");
        let cfg = SsdConfig::tiny_test();
        let core = dev.core();
        for (_, stripe) in core.recovery.stripes.iter() {
            let member_dies: Vec<usize> = stripe
                .members
                .iter()
                .map(|&m| core.ssd.translate(m).unwrap().plane.die.flat(&cfg))
                .collect();
            let distinct: HashSet<usize> = member_dies.iter().copied().collect();
            assert_eq!(distinct.len(), member_dies.len(), "members share a die: {member_dies:?}");
            let parity_die = core.ssd.translate(stripe.parity_lpn).unwrap().plane.die.flat(&cfg);
            assert!(
                !distinct.contains(&parity_die),
                "parity die {parity_die} collides with members {member_dies:?}"
            );
        }
    }

    #[test]
    fn stuck_block_rebuild_keeps_fc_query_exact() {
        let mut dev = device();
        dev.enable_parity();
        let mut rng = StdRng::seed_from_u64(2);
        let vs: Vec<BitVec> = (0..4).map(|_| BitVec::random(256, &mut rng)).collect();
        let handles: Vec<_> = vs
            .iter()
            .enumerate()
            .map(|(i, v)| dev.fc_write(&format!("op{i}"), v, StoreHints::and_group("g")).unwrap())
            .collect();
        // All four single-page operands share one block (group g, slot 0)
        // — the stuck fault silently corrupts every one of them, and the
        // injection-time rebuild recovers each from its mirror stripe.
        let report = dev.inject_faults(&FaultPlan::new().stuck_block("op0", 0)).unwrap();
        assert_eq!(report.rebuilt_pages, 4, "all co-resident pages rebuilt: {report:?}");
        assert_eq!(report.lost_pages, 0);
        assert_eq!(report.touched_operands.len(), 4);
        assert!(!report.epoch_bumped, "itemized faults must not wipe the whole cache");
        let expr = Expr::and_vars(handles.iter().map(|h| h.id));
        let (result, _) = dev.fc_read(&expr).unwrap();
        let expect = vs.iter().skip(1).fold(vs[0].clone(), |a, v| a.and(v));
        assert_eq!(result, expect, "query after rebuild must stay bit-exact");
        assert!(dev.health().parity_rebuilds >= 4);
    }

    #[test]
    fn die_failure_rebuilds_every_mapped_page() {
        let mut dev = device();
        dev.enable_parity();
        let mut rng = StdRng::seed_from_u64(3);
        let data = BitVec::random(1024, &mut rng); // 4 pages, one per die
        let h = dev.fc_write("a", &data, StoreHints::and_group("g")).unwrap();
        let cfg = SsdConfig::tiny_test();
        let victim_die = dev.operand_dies(h.id).unwrap()[0].flat(&cfg);
        let report = dev.inject_faults(&FaultPlan::new().fail_die(victim_die)).unwrap();
        assert_eq!(report.lost_pages, 0, "single-die failure is within parity budget");
        assert!(report.rebuilt_pages >= 1);
        let (result, _) = dev.fc_read(&Expr::var(h.id)).unwrap();
        assert_eq!(result, data);
        // Nothing of the operand remains on the failed die.
        for die in dev.operand_dies(h.id).unwrap() {
            assert_ne!(die.flat(&cfg), victim_die);
        }
    }

    #[test]
    fn fault_plan_unknown_name_errors_without_mutating() {
        let dev = device();
        let mut rng = StdRng::seed_from_u64(4);
        let data = BitVec::random(256, &mut rng);
        dev.fc_write("a", &data, StoreHints::and_group("g")).unwrap();
        let err =
            dev.inject_faults(&FaultPlan::new().retention(12.0).age("nope", 1000)).unwrap_err();
        assert!(matches!(err, FcError::UnknownName(n) if n == "nope"));
        let err = dev.inject_faults(&FaultPlan::new().fail_die(99)).unwrap_err();
        assert!(matches!(err, FcError::DieOutOfRange { die: 99, .. }));
        // Validation rejected the plans before the retention change: the
        // chips are untouched.
        let die0 = DieId::from_flat(0, dev.config());
        assert_eq!(dev.core().ssd.chip(die0).retention_months(), 0.0);
    }

    #[test]
    fn margin_scrubber_selects_above_threshold_most_at_risk_first() {
        let cfg = ScrubConfig { margin_fraction: 0.02, max_per_pass: 2 };
        let margin = 0.111;
        let c = |lpn, rber| ScrubCandidate { lpn, die: 0, predicted_rber: rber, margin };
        let candidates = vec![c(0, 3.0e-3), c(1, 5.0e-4), c(2, 9.0e-3), c(3, 2.5e-3), c(4, 1.0e-6)];
        let picks = MarginScrubber.select(&candidates, &cfg);
        // 5e-4 and 1e-6 are below 0.02 × 0.111 ≈ 2.2e-3; of the rest the
        // two worst are kept (max_per_pass = 2), worst first.
        assert_eq!(picks, vec![2, 0]);
    }

    #[test]
    fn durable_roundtrip_overwrite_and_unknown_name() {
        let dev = device();
        let mut rng = StdRng::seed_from_u64(5);
        let v1 = BitVec::random(1000, &mut rng);
        let v2 = BitVec::random(500, &mut rng);
        dev.store_durable("cfg", &v1).unwrap();
        assert_eq!(dev.read_durable("cfg").unwrap(), v1);
        assert!(matches!(dev.store_durable("cfg", &v2).unwrap_err(), FcError::DuplicateName(_)));
        dev.overwrite_durable("cfg", &v2).unwrap();
        assert_eq!(dev.read_durable("cfg").unwrap(), v2);
        assert!(matches!(dev.read_durable("nope").unwrap_err(), FcError::UnknownName(_)));
        assert!(matches!(dev.overwrite_durable("nope", &v2).unwrap_err(), FcError::UnknownName(_)));
    }

    #[test]
    fn scrub_refreshes_aged_durable_pages_then_goes_quiet() {
        let mut dev = FlashCosmosDevice::new_physics(SsdConfig::tiny_test());
        dev.ssd_mut().set_ecc(EccConfig::durable());
        dev.enable_parity();
        let mut rng = StdRng::seed_from_u64(6);
        let data = BitVec::random(1000, &mut rng);
        dev.store_durable("log", &data).unwrap();
        dev.inject_faults(&FaultPlan::new().retention(48.0).age("log", 15_000)).unwrap();
        let queued = dev.schedule_scrub();
        assert!(queued > 0, "aged pages must cross the scrub threshold");
        let scrubbed = dev.run_scrub().unwrap();
        assert!(scrubbed >= queued as u64, "every queued page refreshed");
        assert_eq!(dev.read_durable("log").unwrap(), data, "refresh preserves data");
        // Refreshed pages sit on fresh blocks (PEC 0) whose predicted
        // RBER is back under the margin: a second pass finds nothing.
        assert_eq!(dev.schedule_scrub(), 0, "scrub must converge");
        assert_eq!(dev.pending_scrub(), 0);
        assert!(dev.health().pages_scrubbed >= scrubbed);
    }

    #[test]
    fn oversized_scrub_pass_defers_under_budget() {
        let mut dev = FlashCosmosDevice::new_physics(SsdConfig::tiny_test());
        dev.ssd_mut().set_ecc(EccConfig::durable());
        let mut rng = StdRng::seed_from_u64(7);
        let data = BitVec::random(2000, &mut rng);
        dev.store_durable("log", &data).unwrap();
        dev.inject_faults(&FaultPlan::new().retention(48.0).age("log", 15_000)).unwrap();
        let queued = dev.schedule_scrub();
        assert!(queued > 1);
        // A budget that fits roughly one refresh defers the rest instead
        // of blowing the latency envelope.
        let budget = dev.config().tr_us + dev.config().tprog_slc_us;
        let mut queues = DieQueues::for_config(dev.config());
        let (scrubbed, deferred) = dev.core_mut().execute_scrub(&mut queues, budget).unwrap();
        assert!(deferred > 0, "oversized pass must defer: {scrubbed} scrubbed, {deferred} left");
        assert_eq!(scrubbed as usize + deferred, queued);
        assert_eq!(dev.pending_scrub(), deferred, "deferred jobs stay queued");
        // The remainder drains once the budget allows.
        let rest = dev.run_scrub().unwrap();
        assert_eq!(rest as usize, deferred);
    }

    #[test]
    fn retention_fault_bumps_epoch_and_itemized_faults_do_not() {
        let dev = device();
        let mut rng = StdRng::seed_from_u64(8);
        let data = BitVec::random(256, &mut rng);
        dev.fc_write("a", &data, StoreHints::and_group("g")).unwrap();
        let epoch0 = dev.core().epoch;
        let report = dev.inject_faults(&FaultPlan::new().age("a", 500).disturb("a", 1000)).unwrap();
        assert_eq!(dev.core().epoch, epoch0, "itemized faults leave the epoch alone");
        assert!(!report.epoch_bumped);
        assert_eq!(report.touched_operands, vec![0]);
        let report = dev.inject_faults(&FaultPlan::new().retention(24.0)).unwrap();
        assert!(report.epoch_bumped);
        assert!(dev.core().epoch > epoch0);
    }
}
