//! Multi-shard cluster router: several [`FlashCosmosDevice`] shards
//! behind one operand namespace.
//!
//! A single device scales to the channels its controller owns; past
//! that, deployments scale *out* — more SSDs behind one ingest point.
//! [`FcCluster`] models that tier with the same split/merge discipline
//! [`crate::crossdie`] uses inside one device:
//!
//! * **Consistent-hash routing** — each operand name maps to one shard
//!   via rendezvous (highest-random-weight) hashing, so adding a shard
//!   moves only `1/n` of the namespace and two writers never disagree
//!   about an operand's home. All of an operand's pages, overwrites and
//!   maintenance stay on its home shard.
//! * **Cross-shard queries** — an expression whose operands span shards
//!   splits the way cross-plane queries split inside a device: n-ary
//!   AND/OR children are bucketed by home shard (co-resident children
//!   compile into one per-shard leaf query, keeping MWS fusion on the
//!   shard), spanning children recurse, and the cluster controller
//!   merges the per-shard partial vectors (`ClusterPlan`). Thresholds
//!   expand to AND/OR form first, exactly as in the cross-die splitter.
//! * **Batched submission** — [`FcCluster::submit`] compiles a whole
//!   [`QueryBatch`] into one per-shard sub-batch per shard (so each
//!   shard plans its leaves jointly: dedup and shared-term extraction
//!   still apply shard-locally), then merges per query. Shards are
//!   independent devices running concurrently, so the modeled critical
//!   path is the slowest shard's, and the measured controller merge
//!   time feeds the same die/channel/merge bottleneck attribution the
//!   in-device drain reports ([`ClusterStats::bottleneck`]).
//! * **Per-shard maintenance** — every shard keeps its own session,
//!   maintenance queue and scrub queue; [`FcCluster::run_maintenance`]
//!   and [`FcCluster::drain`] fan out and report per-shard stats.
//!
//! Lock order: the cluster adds no locks of its own — the registry and
//! name table are plain single-owner state (`&mut self` on the write
//! path), and each shard's internal `RwLock` discipline is unchanged.
//! Raw shard access for tests and audits goes through
//! [`FcCluster::shard_mut`], the lint-mutators chokepoint.

use std::collections::BTreeMap;
use std::time::Instant;

use fc_bits::BitVec;
use fc_ssd::SsdConfig;

use crate::batch::{BatchStats, Bottleneck, QueryBatch, QueryFailure, QueryId};
use crate::crossdie::MergeOp;
use crate::device::{FcError, FlashCosmosDevice, OperandHandle, StoreHints};
use crate::expr::{Expr, Nnf, OperandId};
use crate::maintenance::MaintenanceStats;
use crate::planner::expand_thresholds;
use crate::session::DrainStats;

/// Where a cluster operand lives: its home shard and the shard-local
/// handle queries on that shard use.
#[derive(Debug, Clone, Copy)]
struct Slot {
    shard: usize,
    local: OperandHandle,
}

/// A cluster of [`FlashCosmosDevice`] shards behind one router.
///
/// Operand handles returned by [`FcCluster::fc_write`] live in the
/// *cluster's* id space — build [`Expr`]s from them exactly as with a
/// single device and submit through [`FcCluster::fc_read`] /
/// [`FcCluster::submit`]; the router translates to shard-local ids.
pub struct FcCluster {
    shards: Vec<FlashCosmosDevice>,
    /// Cluster operand id → home shard + local handle.
    registry: Vec<Slot>,
    /// Name → cluster operand id.
    names: BTreeMap<String, OperandId>,
}

/// The compiled shape of one cross-shard query: per-shard leaf
/// expressions merged by the cluster controller. Mirrors
/// [`crate::crossdie::ExecPlan`] one level up.
#[derive(Debug, Clone)]
enum ClusterPlan {
    /// All operands of this subtree live on one shard: runs there as a
    /// single (jointly planned) query, in shard-local operand ids.
    Leaf { shard: usize, expr: Expr },
    /// Controller merge over sub-plans.
    Merge { op: MergeOp, parts: Vec<ClusterPlan> },
}

/// Execution statistics of one cluster pass ([`FcCluster::submit`] /
/// [`FcCluster::fc_read`]): per-shard device stats plus the cluster
/// controller's measured merge cost.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Total sensing operations across all shards.
    pub senses: u64,
    /// Slowest shard's busiest-die time, µs.
    pub busiest_die_us: f64,
    /// Slowest shard's busiest-channel (bus) time, µs.
    pub busiest_channel_us: f64,
    /// Modeled critical path: shards execute concurrently, so this is
    /// the slowest shard's critical path, µs.
    pub critical_path_us: f64,
    /// Measured wall time the cluster controller spent merging per-shard
    /// partial vectors, µs. Grows with cross-shard fan-in; when it
    /// dominates the device-side critical path the cluster stops scaling
    /// with shards/channels ([`Bottleneck::Merge`]).
    pub merge_us: f64,
    /// Per-shard device statistics, indexed by shard. Shards that
    /// received no leaves hold default (zero) stats.
    pub per_shard: Vec<BatchStats>,
}

impl ClusterStats {
    /// What bounded this pass: the busiest die, the busiest channel bus,
    /// or the cluster controller's merge work.
    pub fn bottleneck(&self) -> Bottleneck {
        if self.merge_us > self.busiest_die_us && self.merge_us > self.busiest_channel_us {
            Bottleneck::Merge
        } else if self.busiest_channel_us > self.busiest_die_us {
            Bottleneck::Channel
        } else {
            Bottleneck::Die
        }
    }

    /// Fraction of the end-to-end modeled+measured time spent in the
    /// controller merge, in `[0, 1]`.
    pub fn merge_share(&self) -> f64 {
        let total = self.critical_path_us + self.merge_us;
        if total <= 0.0 {
            0.0
        } else {
            self.merge_us / total
        }
    }
}

/// Results of [`FcCluster::submit`]: one vector per query in submission
/// order, cluster statistics, and per-query failures (failure isolation
/// carries over from the shards: a leaf failure fails only the queries
/// that depend on it).
#[derive(Debug, Clone)]
pub struct ClusterResults {
    /// Per-query result vectors, indexed by [`QueryId`]. Failed queries
    /// hold empty vectors.
    pub results: Vec<BitVec>,
    /// Cluster execution statistics.
    pub stats: ClusterStats,
    /// Queries that could not be answered, with the cluster-level query
    /// id and the underlying shard failure.
    pub failures: Vec<QueryFailure>,
}

/// One query's merge recipe over the per-shard sub-batches: leaves index
/// `(shard, shard-local QueryId)`.
#[derive(Debug)]
enum IndexedPlan {
    Leaf { shard: usize, query: QueryId },
    Merge { op: MergeOp, parts: Vec<IndexedPlan> },
}

impl FcCluster {
    /// Builds a cluster of `shards` identical devices.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(config: SsdConfig, shards: usize) -> Self {
        assert!(shards >= 1, "a cluster needs at least one shard");
        Self {
            shards: (0..shards).map(|_| FlashCosmosDevice::new(config.clone())).collect(),
            registry: Vec::new(),
            names: BTreeMap::new(),
        }
    }

    /// Number of shards behind the router.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard device.
    pub fn shard(&self, shard: usize) -> &FlashCosmosDevice {
        &self.shards[shard]
    }

    /// Raw mutable access to one shard device, bypassing the router's
    /// operand registry. Escape hatch for tests, audits and benches —
    /// mutating shard state behind the router's back (overwriting
    /// operands by their shard-local names, corrupting for audit) can
    /// desynchronize the registry exactly like raw SSD access
    /// desynchronizes a device's operand table.
    pub fn shard_mut(&mut self, shard: usize) -> &mut FlashCosmosDevice {
        &mut self.shards[shard]
    }

    /// The home shard the router assigns to `name`, whether or not the
    /// operand exists yet. Rendezvous hashing: stable under lookups from
    /// any replica of the routing table, and adding a shard relocates
    /// only the names whose new shard wins the vote (~`1/n` of them).
    pub fn home_shard(&self, name: &str) -> usize {
        let h = name_hash(name);
        (0..self.shards.len())
            .max_by_key(|&s| mix(h ^ mix(s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .expect("a cluster has at least one shard")
    }

    /// The cluster handle for a stored operand name.
    pub fn operand(&self, name: &str) -> Option<OperandHandle> {
        self.names.get(name).map(|&id| OperandHandle { id })
    }

    /// Stores an operand on its home shard and returns a cluster-level
    /// handle usable in expressions submitted through the router.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names or any shard-level write error.
    pub fn fc_write(
        &mut self,
        name: &str,
        data: &BitVec,
        hints: StoreHints,
    ) -> Result<OperandHandle, FcError> {
        if self.names.contains_key(name) {
            return Err(FcError::DuplicateName(name.to_string()));
        }
        let shard = self.home_shard(name);
        let local = self.shards[shard].fc_write(name, data, hints)?;
        let id = self.registry.len();
        self.registry.push(Slot { shard, local });
        self.names.insert(name.to_string(), id);
        Ok(OperandHandle { id })
    }

    /// Replaces a stored operand's data in place on its home shard. The
    /// cluster handle stays valid; shard-side generation bumps keep any
    /// cached results for the old data unservable.
    ///
    /// # Errors
    ///
    /// Fails on unknown names or any shard-level overwrite error.
    pub fn fc_overwrite(&mut self, name: &str, data: &BitVec) -> Result<OperandHandle, FcError> {
        let &id = self.names.get(name).ok_or_else(|| FcError::UnknownName(name.to_string()))?;
        let shard = self.registry[id].shard;
        let local = self.shards[shard].fc_overwrite(name, data)?;
        self.registry[id].local = local;
        Ok(OperandHandle { id })
    }

    /// Evaluates one expression across the cluster: splits it into
    /// per-shard leaf queries, runs them, and merges the partials.
    ///
    /// # Errors
    ///
    /// Fails on unknown operand ids, planner errors, or a shard-level
    /// query failure.
    pub fn fc_read(&self, expr: &Expr) -> Result<(BitVec, ClusterStats), FcError> {
        let mut batch = QueryBatch::new();
        batch.push(expr.clone());
        let mut out = self.submit(&batch)?;
        if let Some(f) = out.failures.first() {
            return Err(FcError::QueryFailed {
                query: f.query,
                lpn: f.lpn,
                tiers_tried: f.tiers_tried,
            });
        }
        Ok((out.results.swap_remove(0), out.stats))
    }

    /// Submits a batch of queries across the cluster.
    ///
    /// Every query splits into per-shard leaves; all leaves bound for
    /// the same shard form **one** shard sub-batch, so shard-local joint
    /// planning (dedup, shared-term extraction, die spreading) sees the
    /// whole cluster batch's demand on that shard. Shards execute
    /// independently; the cluster controller then merges each query's
    /// partial vectors and reports the measured merge time in
    /// [`ClusterStats::merge_us`].
    ///
    /// # Errors
    ///
    /// Fails on unknown operand ids or planner errors. Shard-side
    /// *query* failures do not fail the batch: they surface per query in
    /// [`ClusterResults::failures`], and unaffected queries complete.
    pub fn submit(&self, batch: &QueryBatch) -> Result<ClusterResults, FcError> {
        let shards = self.shards.len();
        let mut sub_batches: Vec<QueryBatch> = vec![QueryBatch::new(); shards];
        let mut plans = Vec::with_capacity(batch.len());
        for expr in batch.queries() {
            let nnf = expr.to_nnf();
            let plan = self.split(&nnf)?;
            plans.push(self.index_plan(plan, &mut sub_batches));
        }

        let mut stats =
            ClusterStats { per_shard: vec![BatchStats::default(); shards], ..Default::default() };
        let mut shard_results = Vec::with_capacity(shards);
        let mut shard_failures: Vec<Vec<QueryFailure>> = vec![Vec::new(); shards];
        for (s, sub) in sub_batches.iter().enumerate() {
            if sub.is_empty() {
                shard_results.push(Vec::new());
                continue;
            }
            let out = self.shards[s].submit(sub)?;
            stats.senses += out.stats.senses;
            stats.busiest_die_us = stats.busiest_die_us.max(out.stats.busiest_die_us);
            stats.busiest_channel_us = stats.busiest_channel_us.max(out.stats.busiest_channel_us);
            stats.critical_path_us = stats.critical_path_us.max(out.stats.critical_path_us);
            stats.merge_us += out.stats.merge_us;
            stats.per_shard[s] = out.stats;
            shard_failures[s] = out.failures;
            shard_results.push(out.results);
        }

        let mut results = Vec::with_capacity(plans.len());
        let mut failures = Vec::new();
        let merge_start = Instant::now();
        for (q, plan) in plans.iter().enumerate() {
            if let Some(fail) = plan_failure(plan, &shard_failures) {
                failures.push(QueryFailure { query: q, ..fail });
                results.push(BitVec::zeros(0));
            } else {
                results.push(eval_indexed(plan, &shard_results));
            }
        }
        stats.merge_us += merge_start.elapsed().as_secs_f64() * 1e6;
        Ok(ClusterResults { results, stats, failures })
    }

    /// Fans [`FlashCosmosDevice::drain`] out to every shard. Shard
    /// sessions are independent: each drains its own queue under its own
    /// slack budget.
    ///
    /// # Errors
    ///
    /// Fails on the first shard whose drain fails.
    pub fn drain(&self) -> Result<Vec<DrainStats>, FcError> {
        self.shards.iter().map(|s| s.drain()).collect()
    }

    /// Fans [`FlashCosmosDevice::schedule_maintenance`] out to every
    /// shard, returning the total number of jobs queued.
    pub fn schedule_maintenance(&self) -> usize {
        self.shards.iter().map(|s| s.schedule_maintenance()).sum()
    }

    /// Fans [`FlashCosmosDevice::run_maintenance`] out to every shard's
    /// own maintenance queue.
    ///
    /// # Errors
    ///
    /// Fails on the first shard whose maintenance pass fails.
    pub fn run_maintenance(&self) -> Result<Vec<MaintenanceStats>, FcError> {
        self.shards.iter().map(|s| s.run_maintenance()).collect()
    }

    /// The home shard of a cluster operand id.
    fn shard_of(&self, id: OperandId) -> Result<usize, FcError> {
        self.registry.get(id).map(|s| s.shard).ok_or(FcError::UnknownOperand(id))
    }

    /// Splits a normalized expression into per-shard leaves merged by
    /// the cluster controller — the shard-level mirror of
    /// [`crate::crossdie`]'s per-plane split: n-ary AND/OR children are
    /// bucketed by home shard (co-resident children stay one leaf so the
    /// shard's planner can fuse them), spanning children recurse, and
    /// thresholds expand to AND/OR form first.
    fn split(&self, nnf: &Nnf) -> Result<ClusterPlan, FcError> {
        let mut homes = BTreeMap::new();
        for id in nnf.operands() {
            homes.insert(id, self.shard_of(id)?);
        }
        self.split_inner(nnf, &homes)
    }

    fn split_inner(
        &self,
        nnf: &Nnf,
        homes: &BTreeMap<OperandId, usize>,
    ) -> Result<ClusterPlan, FcError> {
        if let Some(shard) = single_shard(nnf, homes) {
            return Ok(ClusterPlan::Leaf { shard, expr: self.localize(nnf) });
        }
        match nnf {
            Nnf::Literal(_) => unreachable!("a literal has exactly one home shard"),
            Nnf::And(children) => self.split_nary(MergeOp::And, children, homes),
            Nnf::Or(children) => self.split_nary(MergeOp::Or, children, homes),
            Nnf::Xor(a, b) => {
                // XOR merges bit-exactly from full partial vectors, so —
                // unlike the in-device splitter, which is constrained by
                // what the latch circuit can merge — any operand split
                // works here.
                let parts = vec![self.split_inner(a, homes)?, self.split_inner(b, homes)?];
                Ok(ClusterPlan::Merge { op: MergeOp::Xor, parts })
            }
            Nnf::Threshold { .. } => {
                let expanded = expand_thresholds(nnf).map_err(FcError::Plan)?;
                self.split_inner(&expanded, homes)
            }
        }
    }

    /// Buckets n-ary AND/OR children by home shard: children fully
    /// resident on one shard compile together into that shard's leaf,
    /// spanning children recurse into their own sub-plans.
    fn split_nary(
        &self,
        op: MergeOp,
        children: &[Nnf],
        homes: &BTreeMap<OperandId, usize>,
    ) -> Result<ClusterPlan, FcError> {
        let mut buckets: BTreeMap<usize, Vec<&Nnf>> = BTreeMap::new();
        let mut spanning = Vec::new();
        for child in children {
            match single_shard(child, homes) {
                Some(shard) => buckets.entry(shard).or_default().push(child),
                None => spanning.push(child),
            }
        }
        let mut parts = Vec::new();
        for (shard, group) in buckets {
            let exprs: Vec<Expr> = group.iter().map(|n| self.localize(n)).collect();
            let expr = match op {
                MergeOp::And => Expr::and(exprs),
                MergeOp::Or => Expr::or(exprs),
                MergeOp::Xor => unreachable!("XOR splits via its own arm"),
            };
            parts.push(ClusterPlan::Leaf { shard, expr });
        }
        for child in spanning {
            parts.push(self.split_inner(child, homes)?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("one part"))
        } else {
            Ok(ClusterPlan::Merge { op, parts })
        }
    }

    /// Rebuilds a normalized subtree as an [`Expr`] in shard-local
    /// operand ids. Only called on subtrees whose operands all resolved
    /// through the registry (validated by [`FcCluster::split`]).
    fn localize(&self, nnf: &Nnf) -> Expr {
        match nnf {
            Nnf::Literal(lit) => {
                let local = Expr::var(self.registry[lit.id].local.id);
                if lit.negated {
                    Expr::not(local)
                } else {
                    local
                }
            }
            Nnf::And(children) => Expr::and(children.iter().map(|c| self.localize(c)).collect()),
            Nnf::Or(children) => Expr::or(children.iter().map(|c| self.localize(c)).collect()),
            Nnf::Xor(a, b) => Expr::xor(self.localize(a), self.localize(b)),
            Nnf::Threshold { k, children } => {
                Expr::threshold(*k, children.iter().map(|c| self.localize(c)).collect())
            }
        }
    }

    /// Moves a plan's leaves into the per-shard sub-batches, replacing
    /// each leaf expression with its `(shard, shard-local QueryId)`
    /// coordinates for the merge pass.
    fn index_plan(&self, plan: ClusterPlan, sub_batches: &mut [QueryBatch]) -> IndexedPlan {
        match plan {
            ClusterPlan::Leaf { shard, expr } => {
                let query = sub_batches[shard].push(expr);
                IndexedPlan::Leaf { shard, query }
            }
            ClusterPlan::Merge { op, parts } => IndexedPlan::Merge {
                op,
                parts: parts.into_iter().map(|p| self.index_plan(p, sub_batches)).collect(),
            },
        }
    }
}

/// If every operand of `nnf` lives on one shard, that shard.
fn single_shard(nnf: &Nnf, homes: &BTreeMap<OperandId, usize>) -> Option<usize> {
    let mut shard = None;
    for id in nnf.operands() {
        let home = homes[&id];
        match shard {
            None => shard = Some(home),
            Some(s) if s != home => return None,
            Some(_) => {}
        }
    }
    shard
}

/// The first shard failure any leaf of `plan` depends on, if any.
fn plan_failure(plan: &IndexedPlan, failures: &[Vec<QueryFailure>]) -> Option<QueryFailure> {
    match plan {
        IndexedPlan::Leaf { shard, query } => {
            failures[*shard].iter().find(|f| f.query == *query).copied()
        }
        IndexedPlan::Merge { parts, .. } => parts.iter().find_map(|p| plan_failure(p, failures)),
    }
}

/// Merges per-shard partial vectors according to the plan.
fn eval_indexed(plan: &IndexedPlan, shard_results: &[Vec<BitVec>]) -> BitVec {
    match plan {
        IndexedPlan::Leaf { shard, query } => shard_results[*shard][*query].clone(),
        IndexedPlan::Merge { op, parts } => {
            let mut acc = eval_indexed(&parts[0], shard_results);
            for part in &parts[1..] {
                let rhs = eval_indexed(part, shard_results);
                acc = match op {
                    MergeOp::And => acc.and(&rhs),
                    MergeOp::Or => acc.or(&rhs),
                    MergeOp::Xor => acc.xor(&rhs),
                };
            }
            acc
        }
    }
}

/// FNV-1a over the operand name (stable across runs and platforms).
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64-style finalizer: decorrelates the name hash per shard for
/// the rendezvous vote.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn pattern(bits: usize, stride: usize) -> BitVec {
        BitVec::from_fn(bits, |i| i % stride == 0)
    }

    fn cluster_with(
        names: &[&str],
        bits: usize,
        shards: usize,
    ) -> (FcCluster, HashMap<String, (OperandHandle, BitVec)>) {
        let mut cluster = FcCluster::new(SsdConfig::tiny_test(), shards);
        let mut data = HashMap::new();
        for (i, name) in names.iter().enumerate() {
            let v = pattern(bits, i + 2);
            let h = cluster.fc_write(name, &v, StoreHints::and_group(name)).unwrap();
            data.insert((*name).to_string(), (h, v));
        }
        (cluster, data)
    }

    #[test]
    fn routing_is_stable_and_uses_every_shard() {
        let cluster = FcCluster::new(SsdConfig::tiny_test(), 4);
        let mut seen = [false; 4];
        for i in 0..64 {
            let name = format!("op{i}");
            let s = cluster.home_shard(&name);
            assert_eq!(s, cluster.home_shard(&name), "routing must be deterministic");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 names should touch all 4 shards: {seen:?}");
    }

    #[test]
    fn adding_a_shard_only_relocates_a_fraction() {
        let small = FcCluster::new(SsdConfig::tiny_test(), 4);
        let big = FcCluster::new(SsdConfig::tiny_test(), 5);
        let names: Vec<String> = (0..200).map(|i| format!("op{i}")).collect();
        let moved = names
            .iter()
            .filter(|n| {
                let s = small.home_shard(n);
                let b = big.home_shard(n);
                // Rendezvous: a name either keeps its home or moves to
                // the NEW shard — never between old shards.
                assert!(b == s || b == 4, "{n} moved between old shards: {s} -> {b}");
                b != s
            })
            .count();
        // Expected relocation is 1/5 of the namespace; allow slack.
        assert!(moved < 80, "rendezvous hashing relocated {moved}/200 names");
    }

    #[test]
    fn cross_shard_read_matches_ground_truth() {
        let bits = 96;
        let (cluster, data) = cluster_with(&["a", "b", "c", "d", "e"], bits, 3);
        let by_id: HashMap<usize, BitVec> = data.values().map(|(h, v)| (h.id, v.clone())).collect();
        let lookup = |id: usize| by_id[&id].clone();

        let h = |n: &str| data[n].0;
        let exprs = vec![
            Expr::and(vec![h("a").into(), h("b").into(), h("c").into()]),
            Expr::or(vec![h("a").into(), h("d").into(), h("e").into()]),
            Expr::xor(h("b").into(), h("e").into()),
            Expr::or(vec![Expr::and(vec![h("a").into(), h("b").into()]), Expr::not(h("c").into())]),
            Expr::threshold(2, vec![h("a").into(), h("c").into(), h("e").into()]),
        ];
        for expr in &exprs {
            let (got, _) = cluster.fc_read(expr).unwrap();
            assert_eq!(got, expr.eval(&lookup), "cluster result diverged for {expr}");
        }
    }

    #[test]
    fn batch_submit_merges_per_query_and_attributes_merge_time() {
        let bits = 64;
        let (cluster, data) = cluster_with(&["a", "b", "c", "d"], bits, 2);
        let by_id: HashMap<usize, BitVec> = data.values().map(|(h, v)| (h.id, v.clone())).collect();
        let lookup = |id: usize| by_id[&id].clone();
        let h = |n: &str| data[n].0;

        let mut batch = QueryBatch::new();
        batch.push(Expr::and(vec![h("a").into(), h("b").into(), h("c").into(), h("d").into()]));
        batch.push(Expr::or(vec![h("a").into(), h("c").into()]));
        let out = cluster.submit(&batch).unwrap();
        assert!(out.failures.is_empty());
        for (q, expr) in batch.queries().iter().enumerate() {
            assert_eq!(out.results[q], expr.eval(&lookup), "query {q} diverged");
        }
        assert_eq!(out.stats.per_shard.len(), 2);
        assert!(out.stats.senses > 0);
        assert!(out.stats.merge_us >= 0.0);
        assert!(out.stats.critical_path_us > 0.0);
        // Attribution is always one of the three named resources.
        let _ = out.stats.bottleneck();
        assert!((0.0..=1.0).contains(&out.stats.merge_share()));
    }

    #[test]
    fn overwrite_routes_to_home_shard_and_fresh_data_is_served() {
        let bits = 64;
        let (mut cluster, data) = cluster_with(&["a", "b"], bits, 2);
        let h = |n: &str| data[n].0;
        let expr = Expr::and(vec![h("a").into(), h("b").into()]);
        let (before, _) = cluster.fc_read(&expr).unwrap();
        assert_eq!(before, data["a"].1.and(&data["b"].1));

        let fresh = pattern(bits, 7);
        let home = cluster.home_shard("a");
        let handle = cluster.fc_overwrite("a", &fresh).unwrap();
        assert_eq!(handle.id, h("a").id, "overwrite keeps the cluster handle");
        assert!(cluster.shard(home).operand("a").is_some(), "operand must stay on its home shard");
        let (after, _) = cluster.fc_read(&expr).unwrap();
        assert_eq!(after, fresh.and(&data["b"].1));
    }

    #[test]
    fn unknown_operand_is_rejected() {
        let cluster = FcCluster::new(SsdConfig::tiny_test(), 2);
        let err = cluster.fc_read(&Expr::var(7)).unwrap_err();
        assert!(matches!(err, FcError::UnknownOperand(7)));
    }

    #[test]
    fn maintenance_and_drain_fan_out_per_shard() {
        let (cluster, _) = cluster_with(&["a", "b", "c"], 64, 3);
        let drains = cluster.drain().unwrap();
        assert_eq!(drains.len(), 3);
        let maint = cluster.run_maintenance().unwrap();
        assert_eq!(maint.len(), 3);
        let _ = cluster.schedule_maintenance();
    }
}
