//! Layout advisor: derives the §6.3 application-level storage choices
//! from the expression an application intends to run.
//!
//! §6.3 leaves three decisions to the application: *which* data feeds
//! in-flash computation (→ ESP), *whether* to store inverses (§6.1), and
//! *which operands co-reside in a block*. [`suggest_hints`] walks the
//! normalized expression and makes those choices so that the planner
//! produces minimal sensing counts:
//!
//! * literals AND-ed together → same group, stored as-is (intra-block
//!   MWS), chunked at the string length;
//! * literals OR-ed together within one group → same group, stored
//!   **inverted** (a single inverse intra-block MWS computes the OR);
//! * OR across AND-groups (the Eq. 1 / KCS shape) → each child in its
//!   own group so the groups land in different blocks.
//!
//! The advisor plans against the same [`PlannerCaps`] the planner
//! enforces (power cap on fused blocks, string length for chunking), so
//! its estimates track what the device will actually execute. Every
//! group it emits carries the same **plane-colocation domain**
//! ([`crate::device::StoreHints::colocate`]): one expression's groups
//! must share a plane for the planner's inter-block fusion and S-latch
//! accumulation to apply, while *different* expressions (different
//! domains) spread across dies under the device's die-aware placement.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::device::StoreHints;
use crate::expr::{Expr, Nnf, OperandId};
use crate::planner::PlannerCaps;

/// Advisory result: hints per operand plus the sensing-cost estimate the
/// planner will achieve under them.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutAdvice {
    /// Store hints per operand.
    pub hints: HashMap<OperandId, StoreHints>,
    /// Estimated MWS commands per plane-stripe for the target expression.
    pub estimated_senses: usize,
}

impl LayoutAdvice {
    /// Hints for one operand (falling back to a default AND-group for
    /// operands the expression does not constrain).
    pub fn hints_for(&self, id: OperandId) -> StoreHints {
        self.hints.get(&id).cloned().unwrap_or_else(|| StoreHints::and_group("default"))
    }
}

/// Derives storage hints for `expr` under the device's planner caps
/// (string length for chunking, power cap for OR fusion).
///
/// Operands appearing several times adopt the first role encountered;
/// re-storing data per-expression (or copying via `migrate`) is the
/// §10 answer when one layout cannot serve two access patterns.
pub fn suggest_hints(expr: &Expr, caps: PlannerCaps) -> LayoutAdvice {
    // One colocation domain per expression (derived from its structure):
    // this expression's groups share a plane so they can fuse, distinct
    // expressions' groups spread across dies.
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    expr.hash(&mut hasher);
    let domain = format!("fuse-{:016x}", hasher.finish());
    let mut advisor = Advisor { hints: HashMap::new(), group_counter: 0, caps, domain };
    let nnf = expr.to_nnf();
    let senses = advisor.walk_top(&nnf);
    LayoutAdvice { hints: advisor.hints, estimated_senses: senses }
}

struct Advisor {
    hints: HashMap<OperandId, StoreHints>,
    group_counter: usize,
    caps: PlannerCaps,
    domain: String,
}

impl Advisor {
    fn fresh_group(&mut self, prefix: &str) -> String {
        self.group_counter += 1;
        format!("{prefix}-{}", self.group_counter)
    }

    fn assign(&mut self, id: OperandId, group: &str, inverted: bool) {
        let hints = StoreHints {
            group: group.to_string(),
            inverted,
            die: None,
            colocate: Some(self.domain.clone()),
            scheme: None,
        };
        self.hints.entry(id).or_insert(hints);
    }

    /// Assigns literals of a conjunction: positives share chunked
    /// AND-groups. Returns the number of MWS commands (= chunks).
    fn assign_and_literals(&mut self, ids: &[OperandId], negated: &[bool]) -> usize {
        let mut senses = 0;
        // Positive literals: chunk at the string length.
        let positives: Vec<OperandId> =
            ids.iter().zip(negated).filter(|(_, &n)| !n).map(|(&i, _)| i).collect();
        for chunk in positives.chunks(self.caps.wls_per_block) {
            let group = self.fresh_group("and");
            for &id in chunk {
                self.assign(id, &group, false);
            }
            senses += 1;
        }
        // Negated conjuncts: store inverted so the raw page equals the
        // literal's value — they then join a positive chunk.
        let negatives: Vec<OperandId> =
            ids.iter().zip(negated).filter(|(_, &n)| n).map(|(&i, _)| i).collect();
        for chunk in negatives.chunks(self.caps.wls_per_block) {
            let group = self.fresh_group("nand");
            for &id in chunk {
                self.assign(id, &group, true);
            }
            senses += 1;
        }
        senses
    }

    fn walk_top(&mut self, nnf: &Nnf) -> usize {
        match nnf {
            Nnf::Literal(l) => {
                let group = self.fresh_group("lit");
                // A negated top-level literal reads via the chip inverse
                // mode; no need to store inverted.
                self.assign(l.id, &group, false);
                1
            }
            Nnf::And(children) => {
                let (lit_ids, lit_neg, others) = split_literals(children);
                let mut senses = self.assign_and_literals(&lit_ids, &lit_neg);
                for child in others {
                    senses += self.walk_or_group(child);
                }
                senses.max(1)
            }
            Nnf::Or(children) => {
                // Eq. 1 shape: each child gets its own block-group; the
                // planner fuses up to the power cap of them per command.
                let mut groups = 0;
                for child in children {
                    groups += self.walk_or_child(child);
                }
                groups.div_ceil(self.caps.max_inter_blocks).max(1)
            }
            Nnf::Xor(a, b) => {
                let mut senses = 0;
                for side in [a.as_ref(), b.as_ref()] {
                    if let Nnf::Literal(l) = side {
                        let group = self.fresh_group("xor");
                        self.assign(l.id, &group, false);
                        senses += 1;
                    }
                }
                senses.max(2)
            }
            Nnf::Threshold { children, .. } => {
                // A vote wants all operands on co-located wordlines of ONE
                // block with uniform raw polarity: negated votes store
                // inverted so every raw page equals its literal's value,
                // and the planner's dynamic threshold sense answers the
                // whole vote in a single command.
                let group = self.fresh_group("vote");
                for c in children {
                    if let Nnf::Literal(l) = c {
                        self.assign(l.id, &group, l.negated);
                    }
                }
                1
            }
        }
    }

    /// An OR group appearing inside a conjunction: store its literals
    /// inverted in one block (§6.1) so it feeds the single leading
    /// inverse command.
    fn walk_or_group(&mut self, child: &Nnf) -> usize {
        match child {
            Nnf::Or(grandchildren) => {
                let group = self.fresh_group("or");
                for g in grandchildren {
                    if let Nnf::Literal(l) = g {
                        // Stored-inverted positives become raw-complement;
                        // negated literals are stored as-is (their raw
                        // page is already the complement of the literal).
                        self.assign(l.id, &group, !l.negated);
                    }
                }
                1
            }
            Nnf::Literal(l) => {
                let group = self.fresh_group("lit");
                self.assign(l.id, &group, false);
                1
            }
            _ => 1,
        }
    }

    /// A child of a top-level OR: its own group so it can be a distinct
    /// block target (Eq. 1).
    fn walk_or_child(&mut self, child: &Nnf) -> usize {
        match child {
            Nnf::Literal(l) => {
                let group = self.fresh_group("orc");
                self.assign(l.id, &group, l.negated);
                1
            }
            Nnf::And(lits) => {
                let group = self.fresh_group("orc-and");
                for lit in lits {
                    if let Nnf::Literal(l) = lit {
                        self.assign(l.id, &group, l.negated);
                    }
                }
                1
            }
            other => self.walk_top(other),
        }
    }
}

fn split_literals(children: &[Nnf]) -> (Vec<OperandId>, Vec<bool>, Vec<&Nnf>) {
    let mut ids = Vec::new();
    let mut neg = Vec::new();
    let mut others = Vec::new();
    for c in children {
        match c {
            Nnf::Literal(l) => {
                ids.push(l.id);
                neg.push(l.negated);
            }
            other => others.push(other),
        }
    }
    (ids, neg, others)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FlashCosmosDevice;
    use fc_bits::BitVec;
    use fc_ssd::SsdConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_caps() -> PlannerCaps {
        PlannerCaps::for_config(&SsdConfig::tiny_test())
    }

    /// Stores operands per the advice and checks fc_read achieves the
    /// estimated sensing count and an exact result.
    fn validate(expr: &Expr, n_operands: usize, seed: u64) -> (u64, usize) {
        validate_on(expr, n_operands, seed, SsdConfig::tiny_test())
    }

    fn validate_on(expr: &Expr, n_operands: usize, seed: u64, cfg: SsdConfig) -> (u64, usize) {
        let advice = suggest_hints(expr, PlannerCaps::for_config(&cfg));
        let dev = FlashCosmosDevice::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors: Vec<BitVec> =
            (0..n_operands).map(|_| BitVec::random(cfg.page_bits(), &mut rng)).collect();
        for (i, v) in vectors.iter().enumerate() {
            dev.fc_write(&format!("v{i}"), v, advice.hints_for(i)).unwrap();
        }
        let (result, stats) = dev.fc_read(expr).unwrap();
        let lookup = |i: usize| vectors[i].clone();
        assert_eq!(result, expr.eval(&lookup));
        (stats.senses, advice.estimated_senses)
    }

    #[test]
    fn and_advice_colocates_and_single_senses() {
        let expr = Expr::and_vars(0..6);
        let (senses, estimate) = validate(&expr, 6, 1);
        assert_eq!(senses, 1, "one stripe at page-size vectors → one sense");
        assert_eq!(estimate, 1);
    }

    #[test]
    fn or_advice_stores_inverted() {
        let expr = Expr::or_vars(0..5);
        let advice = suggest_hints(&expr, tiny_caps());
        // Top-level OR of literals → each its own group (Eq. 1 targets),
        // capped fusion estimate: ceil(5/4) = 2.
        assert_eq!(advice.estimated_senses, 2);
        let (senses, _) = validate(&expr, 5, 2);
        assert_eq!(senses, 2);
    }

    #[test]
    fn or_advice_tracks_a_non_default_power_cap() {
        // The estimate must follow `PlannerCaps::max_inter_blocks`, not a
        // hard-coded 4: at cap 2, OR-ing 5 blocks takes ceil(5/2) = 3
        // chunked commands — and the device at that cap achieves exactly
        // that.
        let mut cfg = SsdConfig::tiny_test();
        cfg.max_inter_blocks = 2;
        let expr = Expr::or_vars(0..5);
        let advice = suggest_hints(&expr, PlannerCaps::for_config(&cfg));
        assert_eq!(advice.estimated_senses, 3);
        let (senses, estimate) = validate_on(&expr, 5, 2, cfg);
        assert_eq!(senses, 3);
        assert_eq!(estimate, 3);
    }

    #[test]
    fn advice_colocates_one_expression_on_one_plane() {
        // All groups of one expression share a colocation domain (they
        // must share a plane to fuse); a different expression gets a
        // different domain so its groups spread to other dies.
        let a = Expr::or(vec![Expr::and_vars(0..3), Expr::var(3)]);
        let b = Expr::or(vec![Expr::and_vars(4..7), Expr::var(7)]);
        let advice_a = suggest_hints(&a, tiny_caps());
        let advice_b = suggest_hints(&b, tiny_caps());
        let dom = |advice: &LayoutAdvice, id: usize| advice.hints_for(id).colocate.unwrap();
        assert_eq!(dom(&advice_a, 0), dom(&advice_a, 3), "one expr, one domain");
        assert_ne!(dom(&advice_a, 0), dom(&advice_b, 4), "distinct exprs spread");
    }

    #[test]
    fn and_of_or_groups_uses_inverse_storage() {
        // (v0|v1) & (v2|v3) & v4 — the Fig. 16 family.
        let expr = Expr::and(vec![Expr::or_vars([0, 1]), Expr::or_vars([2, 3]), Expr::var(4)]);
        let advice = suggest_hints(&expr, tiny_caps());
        assert!(advice.hints_for(0).inverted && advice.hints_for(1).inverted);
        assert!(advice.hints_for(2).inverted && advice.hints_for(3).inverted);
        assert!(!advice.hints_for(4).inverted);
        // Distinct groups for the two OR sets.
        assert_ne!(advice.hints_for(0).group, advice.hints_for(2).group);
        let (senses, _) = validate(&expr, 5, 3);
        // One inverse command (both OR groups) + one positive command.
        assert_eq!(senses, 2);
    }

    #[test]
    fn kcs_advice_separates_clique_vector() {
        let expr = Expr::or(vec![Expr::and_vars(0..4), Expr::var(4)]);
        let advice = suggest_hints(&expr, tiny_caps());
        let adj_group = advice.hints_for(0).group.clone();
        assert_eq!(advice.hints_for(3).group, adj_group, "adjacency vectors co-locate");
        assert_ne!(advice.hints_for(4).group, adj_group, "clique vector in its own block");
        assert_eq!(
            advice.hints_for(0).colocate,
            advice.hints_for(4).colocate,
            "…but on the same plane, so AND ∥ OR fuse"
        );
        let (senses, _) = validate(&expr, 5, 4);
        assert_eq!(senses, 1, "AND ∥ OR fused");
    }

    #[test]
    fn negated_conjuncts_store_inverted() {
        let expr = Expr::and(vec![Expr::var(0), Expr::not(Expr::var(1)), Expr::not(Expr::var(2))]);
        let advice = suggest_hints(&expr, tiny_caps());
        assert!(!advice.hints_for(0).inverted);
        assert!(advice.hints_for(1).inverted && advice.hints_for(2).inverted);
        let (senses, _) = validate(&expr, 3, 5);
        // Positives chunk + negatives chunk → 2 commands.
        assert_eq!(senses, 2);
    }

    #[test]
    fn chunking_respects_string_length() {
        let expr = Expr::and_vars(0..20);
        let advice = suggest_hints(&expr, tiny_caps());
        let groups: std::collections::HashSet<String> =
            (0..20).map(|i| advice.hints_for(i).group).collect();
        assert_eq!(groups.len(), 3, "20 operands over 8-WL strings → 3 groups");
        assert_eq!(advice.estimated_senses, 3);
        let (senses, _) = validate(&expr, 20, 6);
        assert_eq!(senses, 3);
    }

    #[test]
    fn threshold_advice_yields_one_dynamic_sense() {
        // TH3 over 6 vectors: advisor co-locates the vote in one group,
        // the planner answers it with a single ThresholdMws per stripe.
        let expr = Expr::threshold_vars(3, 0..6);
        let advice = suggest_hints(&expr, tiny_caps());
        let g = advice.hints_for(0).group.clone();
        assert!((1..6).all(|i| advice.hints_for(i).group == g), "one vote, one block");
        assert_eq!(advice.estimated_senses, 1);
        let (senses, _) = validate(&expr, 6, 8);
        assert_eq!(senses, 1, "the dynamic sense answers the vote in one command");
    }

    #[test]
    fn majority_advice_is_exact_in_flash() {
        let expr = Expr::majority_vars(0..7);
        let (senses, estimate) = validate(&expr, 7, 9);
        assert_eq!(senses, 1);
        assert_eq!(estimate, 1);
    }

    #[test]
    fn threshold_with_negated_votes_stores_them_inverted() {
        // TH2(v0, !v1, v2): the negated vote stores inverted so the raw
        // polarity stays uniform and the single sense still applies.
        let expr = Expr::threshold(2, vec![Expr::var(0), Expr::not(Expr::var(1)), Expr::var(2)]);
        let advice = suggest_hints(&expr, tiny_caps());
        assert!(!advice.hints_for(0).inverted);
        assert!(advice.hints_for(1).inverted);
        let (senses, _) = validate(&expr, 3, 10);
        assert_eq!(senses, 1);
    }

    #[test]
    fn xor_advice() {
        let expr = Expr::xor(Expr::var(0), Expr::var(1));
        let (senses, estimate) = validate(&expr, 2, 7);
        assert_eq!(senses, 2);
        assert_eq!(estimate, 2);
    }
}
