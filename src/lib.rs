//! # flash-cosmos-repro — repository facade
//!
//! This crate ties the workspace together for the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`. The
//! actual functionality lives in the member crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`fc_bits`] | bit vectors, bulk ops, NAND data patterns |
//! | [`fc_nand`] | the NAND chip simulator (V_TH physics, MWS, ESP, latches, command set) |
//! | [`fc_ssd`] | SSD-scale simulation (channels, FTL, BCH ECC, pipeline timing, energy) |
//! | [`fc_host`] | host CPU/DRAM models (the OSP baseline) |
//! | [`flash_cosmos`] | the paper's contribution: planner, batched query-session device API, platforms, characterization |
//! | [`fc_workloads`] | BMI / IMS / KCS / HDC generators with ground truth, batch-ready |
//!
//! The device-facing entry point is the batched query-session API:
//! collect expressions in a [`flash_cosmos::QueryBatch`], call
//! [`submit`](flash_cosmos::FlashCosmosDevice::submit), and read the
//! per-query results plus a [`flash_cosmos::BatchStats`] reporting the
//! senses the joint plan saved versus serial execution. Single
//! expressions still go through
//! [`fc_read`](flash_cosmos::FlashCosmosDevice::fc_read), now a thin
//! one-query wrapper over the same path.

pub use fc_bits;
pub use fc_host;
pub use fc_nand;
pub use fc_ssd;
pub use fc_workloads;
pub use flash_cosmos;

/// Builds the miniature demo device used by several examples: the tiny
/// SSD preset with deterministic (error-free) chips.
pub fn demo_device() -> flash_cosmos::FlashCosmosDevice {
    flash_cosmos::FlashCosmosDevice::new(fc_ssd::SsdConfig::tiny_test())
}

#[cfg(test)]
mod tests {
    #[test]
    fn demo_device_is_usable() {
        use fc_bits::BitVec;
        use flash_cosmos::{QueryBatch, StoreHints};
        let dev = super::demo_device();
        let v = BitVec::ones(64);
        let w = BitVec::zeros(64);
        let hv = dev.fc_write("x", &v, StoreHints::and_group("g")).unwrap();
        let hw = dev.fc_write("y", &w, StoreHints::and_group("g")).unwrap();
        let mut batch = QueryBatch::new();
        let and = batch.push(hv & hw);
        let or = batch.push(hv | hw);
        let out = dev.submit(&batch).unwrap();
        assert_eq!(out.results[and], w);
        assert_eq!(out.results[or], v);
    }
}
