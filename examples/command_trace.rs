//! The Fig. 16 walk-through: compiling
//! `{A1 + (B1·B2·B3·B4)} · (C1+C3) · (D2+D4)` into exactly two MWS
//! commands, showing the ISCM flags, the page bitmaps, and the encoded
//! wire frames (Fig. 15a), then executing them on a chip.
//!
//! Run with: `cargo run --example command_trace`

use fc_bits::BitVec;
use fc_nand::chip::NandChip;
use fc_nand::command::{encode_frame, Command};
use fc_nand::config::ChipConfig;
use fc_nand::geometry::WlAddr;
use flash_cosmos::planner::{self, PlacementMap, PlannerCaps};
use flash_cosmos::Expr;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut chip = NandChip::new(ChipConfig::tiny_test());
    let page_bits = chip.config().geometry.page_bits();
    let mut rng = StdRng::seed_from_u64(16);

    // Store the Fig. 16 data: A and B as-is; C and D inverted ("with the
    // knowledge that they would be used for bitwise OR", §6.2).
    let names = ["A1", "B1", "B2", "B3", "B4", "C1", "C3", "D2", "D4"];
    let vectors: Vec<BitVec> = names.iter().map(|_| BitVec::random(page_bits, &mut rng)).collect();
    let mut placements = PlacementMap::new();
    let layout: [(usize, u32, u32, bool); 9] = [
        (0, 0, 0, false), // A1 → Blk0/WL0
        (1, 1, 0, false), // B1..B4 → Blk1
        (2, 1, 1, false),
        (3, 1, 2, false),
        (4, 1, 3, false),
        (5, 2, 0, true), // C1, C3 → Blk2, inverted
        (6, 2, 2, true),
        (7, 3, 1, true), // D2, D4 → Blk3, inverted
        (8, 3, 3, true),
    ];
    for &(id, block, wl, inverted) in &layout {
        let stored = if inverted { vectors[id].not() } else { vectors[id].clone() };
        chip.execute(Command::esp_program(WlAddr::new(0, block, wl), stored)).unwrap();
        placements.insert(id, WlAddr::new(0, block, wl), inverted);
        println!(
            "store {:>2} → P0/B{block}/W{wl}{}",
            names[id],
            if inverted { " (inverted)" } else { "" }
        );
    }

    // Eq. (4): {A1 + (B1·B2·B3·B4)} · (C1 + C3) · (D2 + D4).
    let expr = Expr::and(vec![
        Expr::or(vec![Expr::var(0), Expr::and_vars(1..5)]),
        Expr::or_vars([5, 6]),
        Expr::or_vars([7, 8]),
    ]);
    println!("\nexpression: {expr}");

    let caps = PlannerCaps { max_inter_blocks: 4, wls_per_block: 8 };
    let program = planner::compile(&expr.to_nnf(), &placements, caps).unwrap();
    println!("compiled to {} MWS commands (paper: 2, Fig. 16):\n", program.sense_count());
    for (i, cmd) in program.commands.iter().enumerate() {
        if let Command::Mws { flags, targets } = cmd {
            println!(
                "  command {} — ISCM = I:{} S:{} C:{} M:{}",
                i + 1,
                u8::from(flags.inverse),
                u8::from(flags.init_s),
                u8::from(flags.init_c),
                u8::from(flags.transfer)
            );
            for t in targets {
                let wls: Vec<u32> = t.wls().collect();
                println!("      target {} PBM wordlines {:?}", t.block, wls);
            }
            let frame = encode_frame(*flags, targets);
            let hex: Vec<String> = frame.iter().map(|b| format!("{b:02X}")).collect();
            println!("      wire frame: {}", hex.join(" "));
        }
    }

    // Execute and verify against host-side evaluation.
    let mut result = None;
    for cmd in &program.commands {
        result = chip.execute(cmd.clone()).unwrap().into_page();
    }
    let result = result.expect("final command transfers to the C-latch");
    let lookup = |i: usize| vectors[i].clone();
    assert_eq!(result, expr.eval(&lookup), "chip result must match host evaluation");
    println!("\nchip result matches host evaluation over {page_bits} bitlines ✓");
}
