//! The paper's reliability argument, end to end (§3.2, §4.2, §5.2):
//!
//! 1. In-flash AND over *ECC-encoded* data corrupts decoding.
//! 2. In-flash AND over *randomized* data is simply wrong.
//! 3. Plain SLC without randomization shows raw bit errors at worst-case
//!    stress — ParaBit's operating point.
//! 4. ESP at the paper's operating point (tESP = 2×tPROG) yields zero
//!    bit errors under the same stress — Flash-Cosmos's operating point.
//!
//! Run with: `cargo run --example reliability_demo`

use fc_bits::BitVec;
use fc_nand::calib;
use fc_nand::randomizer::Randomizer;
use fc_ssd::ecc::{EccConfig, PageCodec, PageDecode};
use flash_cosmos::reliability;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xE5F);

    // (1) ECC: AND of two encoded pages is not a codeword of the AND.
    let codec = PageCodec::new(EccConfig::small());
    let a = BitVec::random(256, &mut rng);
    let b = BitVec::random(256, &mut rng);
    let combined = codec.encode_page(&a).and(&codec.encode_page(&b));
    let ecc_outcome = match codec.decode_page(&combined, 256) {
        PageDecode::Uncorrectable => "uncorrectable ECC failure".to_string(),
        PageDecode::Corrected { data, .. } => {
            format!("mis-decode: {} of 256 result bits wrong", data.hamming_distance(&a.and(&b)))
        }
    };
    println!("1. AND over ECC-encoded pages   → {ecc_outcome}");

    // (2) Randomization: AND does not commute with the scrambler.
    let r = Randomizer::new(99);
    let addr0 = fc_nand::geometry::WlAddr::new(0, 0, 0);
    let addr1 = fc_nand::geometry::WlAddr::new(0, 0, 1);
    let scrambled_and = r.randomize(addr0, &a).and(&r.randomize(addr1, &b));
    let wrong = r.derandomize(addr0, &scrambled_and);
    println!(
        "2. AND over randomized pages    → {} of 256 result bits wrong",
        wrong.hamming_distance(&a.and(&b))
    );

    // (3) + (4): Monte-Carlo validation campaigns at worst-case stress
    // (10K P/E cycles, 1-year retention), as in §5.2 but scaled down.
    let bits = 20_000_000;
    let slc = reliability::validate_slc_baseline(bits, 0xDE40);
    let esp = reliability::validate_zero_errors(bits, 0xDE40);
    println!(
        "3. plain SLC, no randomization  → {} raw bit errors in {} MWS result bits (RBER {:.2e})",
        slc.bit_errors,
        slc.bits_checked,
        slc.bit_errors as f64 / slc.bits_checked as f64
    );
    println!(
        "4. ESP (tESP = {}×tPROG)        → {} bit errors in {} MWS result bits",
        calib::timing::T_ESP_US / calib::timing::T_PROG_SLC_US,
        esp.bit_errors,
        esp.bits_checked
    );
    println!(
        "   (paper: zero errors across {:.2e} bits on 160 real chips → RBER < {:.2e})",
        calib::rber::VALIDATED_BITS,
        calib::rber::ESP_STATISTICAL_RBER
    );
    assert_eq!(esp.bit_errors, 0, "ESP campaign must be error-free");
}
