//! Query sessions: async ticketed submission overlapping two batches
//! across dies, then a warm re-submission answered by the
//! generation-stamped cross-batch result cache — including what happens
//! when an operand is overwritten underneath a cached result.
//!
//! Run with: `cargo run --example query_session`

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::{Expr, FlashCosmosDevice, QueryBatch, StoreHints};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let mut rng = StdRng::seed_from_u64(7);
    let bits = dev.config().page_bits();

    // Two independent query batches whose placement groups are pinned to
    // disjoint die pairs — the shape a busy front end produces when two
    // tenants' data lives on different dies.
    let mut batches: Vec<QueryBatch> = Vec::new();
    for (b, dies) in [(0usize, [0usize, 1]), (1, [2, 3])] {
        let mut batch = QueryBatch::new();
        for g in 0..4 {
            let hints = StoreHints::and_group(&format!("t{b}g{g}")).with_die(dies[g % 2]);
            let ids: Vec<usize> = (0..2)
                .map(|i| {
                    let v = BitVec::random(bits, &mut rng);
                    dev.fc_write(&format!("t{b}g{g}-{i}"), &v, hints.clone()).expect("store").id
                })
                .collect();
            batch.push(Expr::and_vars(ids));
        }
        batches.push(batch);
    }

    // Queue both without blocking, then retire them in one overlapped
    // pass: dies idle during batch 0 execute batch 1's work concurrently.
    let t0 = dev.submit_async(&batches[0]).expect("queue batch 0");
    let t1 = dev.submit_async(&batches[1]).expect("queue batch 1");
    println!("queued {} batches (nothing sensed yet)", dev.session().in_flight());
    let drained = dev.drain().expect("drain");
    println!(
        "drained {} batches: combined critical path {:.1} µs vs {:.1} µs serial \
         ({:.1} µs saved by die overlap, {} dies busy)",
        drained.batches,
        drained.combined_critical_path_us,
        drained.serial_critical_path_us,
        drained.overlap_saved_us(),
        drained.dies_used,
    );
    let r0 = t0.wait(&dev).expect("batch 0 results");
    let _r1 = t1.wait(&dev).expect("batch 1 results");

    // Re-submit batch 0: every unit replays from the result cache — no
    // compilation against the FTL, no sensing, bit-identical output.
    let warm = dev.submit(&batches[0]).expect("warm resubmit");
    assert_eq!(warm.results, r0.results);
    println!(
        "warm resubmit: {} senses ({} cached units replayed {} senses), cache {:?}",
        warm.stats.senses,
        warm.stats.cached_units,
        warm.stats.cached_senses,
        dev.session().cache_stats(),
    );

    // Overwrite one operand. Its placement generation bumps, so exactly
    // the queries that touch it re-sense; the rest stay cached.
    let fresh = BitVec::random(bits, &mut rng);
    dev.fc_overwrite("t0g0-0", &fresh).expect("overwrite");
    let after = dev.submit(&batches[0]).expect("post-overwrite resubmit");
    println!(
        "after overwriting one operand: {} senses re-executed, {} units still cached",
        after.stats.senses, after.stats.cached_units,
    );
    assert_ne!(after.results[0], r0.results[0], "the touched query sees the new data");
    assert_eq!(after.results[1], r0.results[1], "untouched queries are unchanged");
}
