//! Quickstart: store operand vectors on a Flash-Cosmos SSD, then submit
//! a whole batch of bulk bitwise queries as one jointly planned device
//! pass.
//!
//! Run with: `cargo run --example quickstart`

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::{Expr, FlashCosmosDevice, QueryBatch, StoreHints};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A miniature SSD with functionally exact chips (geometry is scaled
    // down; the mechanisms are identical to the Table 1 device).
    let dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let mut rng = StdRng::seed_from_u64(1);

    // Ten operand vectors destined for bulk ANDs: store them in the same
    // placement group so each plane keeps them in one block, stacked on
    // consecutive wordlines of the same NAND strings.
    let bits = 4096;
    let operands: Vec<BitVec> =
        (0..10).map(|_| BitVec::random_with_density(bits, 0.9, &mut rng)).collect();
    let handles: Vec<_> = operands
        .iter()
        .enumerate()
        .map(|(i, v)| {
            dev.fc_write(&format!("vec{i}"), v, StoreHints::and_group("demo"))
                .expect("store operand")
        })
        .collect();

    // A query session: several filters over the same group, including a
    // repeat of the first (production batches are full of repeats).
    // Handles compose with `&`/`|`/`!` operator sugar.
    let all = Expr::and_vars(handles.iter().map(|h| h.id));
    let mut batch = QueryBatch::new();
    batch.push(all.clone());
    batch.push(handles[0] & handles[1] & handles[2]);
    batch.push(Expr::and_vars(handles[3..].iter().map(|h| h.id)));
    batch.push(all.clone()); // duplicate — answered by the first pass

    // One submit → the planner dedups across queries, executes one MWS
    // pass per needed stripe program, and splits the cost per query.
    let out = dev.submit(&batch).expect("in-flash batch");

    // Ground truth on the host.
    let expected = operands.iter().skip(1).fold(operands[0].clone(), |a, v| a.and(v));
    assert_eq!(out.results[0], expected, "in-flash result must be bit-exact");
    assert_eq!(out.results[3], expected, "the duplicate sees the same result");

    // The same computation with the ParaBit baseline: one sense per
    // operand instead of one per stripe.
    let (pb_result, pb) = dev.parabit_read(&all).expect("ParaBit AND");
    assert_eq!(pb_result, expected);

    println!("batched bulk ANDs over {} operands × {bits} bits", operands.len());
    println!("  queries submitted      : {}", out.stats.queries);
    println!("  senses executed        : {}", out.stats.senses);
    println!("  senses if run serially : {}", out.stats.serial_senses);
    println!(
        "  saved by the joint plan: {} ({} duplicate queries)",
        out.stats.senses_saved(),
        out.stats.deduped_queries
    );
    println!(
        "  chip time {:.1} µs (critical path {:.1} µs across dies)",
        out.stats.chip_time_us, out.stats.critical_path_us
    );
    for (qi, q) in out.stats.per_query.iter().enumerate() {
        println!(
            "    query {qi}: {:.2} senses, {:.2} µs, {:.2} µJ (amortized share)",
            q.senses, q.chip_time_us, q.energy_uj
        );
    }
    println!(
        "  ParaBit, single query  : {:>5} senses ({:.1} µs on-chip)",
        pb.senses, pb.chip_time_us
    );
}
