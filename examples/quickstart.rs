//! Quickstart: store operand vectors on a Flash-Cosmos SSD and combine
//! them with a single multi-wordline sensing operation.
//!
//! Run with: `cargo run --example quickstart`

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use flash_cosmos::{Expr, FlashCosmosDevice, StoreHints};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A miniature SSD with functionally exact chips (geometry is scaled
    // down; the mechanisms are identical to the Table 1 device).
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let mut rng = StdRng::seed_from_u64(1);

    // Ten operand vectors destined for a bulk AND: store them in the same
    // placement group so each plane keeps them in one block, stacked on
    // consecutive wordlines of the same NAND strings.
    let bits = 4096;
    let operands: Vec<BitVec> =
        (0..10).map(|_| BitVec::random_with_density(bits, 0.9, &mut rng)).collect();
    let mut ids = Vec::new();
    for (i, v) in operands.iter().enumerate() {
        let handle = dev
            .fc_write(&format!("vec{i}"), v, StoreHints::and_group("demo"))
            .expect("store operand");
        ids.push(handle.id);
    }

    // One fc_read → intra-block MWS: all ten operands sensed at once.
    let expr = Expr::and_vars(ids.iter().copied());
    let (result, fc) = dev.fc_read(&expr).expect("in-flash AND");

    // Ground truth on the host.
    let expected = operands.iter().skip(1).fold(operands[0].clone(), |a, v| a.and(v));
    assert_eq!(result, expected, "in-flash result must be bit-exact");

    // The same computation with the ParaBit baseline: one sense per
    // operand instead of one per stripe.
    let (pb_result, pb) = dev.parabit_read(&expr).expect("ParaBit AND");
    assert_eq!(pb_result, expected);

    println!("bulk AND of {} operands × {} bits", operands.len(), bits);
    println!("  result ones          : {}", result.count_ones());
    println!("  Flash-Cosmos senses  : {:>5} ({:.1} µs on-chip)", fc.senses, fc.chip_time_us);
    println!("  ParaBit senses       : {:>5} ({:.1} µs on-chip)", pb.senses, pb.chip_time_us);
    println!(
        "  sensing reduction    : {:.1}× fewer senses, {:.1}× less chip time",
        pb.senses as f64 / fc.senses as f64,
        pb.chip_time_us / fc.chip_time_us
    );
}
