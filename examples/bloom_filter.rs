//! Partitioned Bloom-filter membership screened in flash.
//!
//! Builds an H-hash partitioned Bloom filter over a fixed candidate set,
//! loads its per-hash indicator vectors into one co-located group, and
//! screens every candidate at once: `k = H` is exact Bloom membership
//! (one intra-block AND sense per stripe), `k = H − 1` keeps answering
//! every true member after a partition is lost — a single dynamic
//! threshold sense per stripe instead of re-probing anything.
//!
//! Run with: `cargo run --example bloom_filter`

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use fc_workloads::bloom::{contains_batch, BloomFilter};
use flash_cosmos::FlashCosmosDevice;

fn main() {
    // A block cache screening 600 candidate object ids through a 4-hash
    // filter; 250 of them (plus unrelated traffic) have been inserted.
    let candidates: Vec<u64> = (0..600).map(|j| 10_000 + j * 13).collect();
    let mut filter = BloomFilter::new(4, 4096, &candidates);
    let inserted: Vec<u64> = candidates.iter().step_by(2).copied().take(250).collect();
    for &key in &inserted {
        filter.insert(key);
    }
    for noise in 0..2_000u64 {
        filter.insert(9_000_000 + noise * 31);
    }

    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    let ids = filter.load(&mut dev, "bloom").expect("load indicator vectors");

    // Exact membership: AND of all four probes, for all 600 candidates.
    let (members, stats) = contains_batch(&mut dev, &ids, 4).expect("membership screen");
    let hits = (0..candidates.len()).filter(|&j| members.get(j)).count();
    let false_pos = (0..candidates.len())
        .filter(|&j| members.get(j) && !inserted.contains(&candidates[j]))
        .count();
    println!("Bloom screen: {} candidates, 4 hashes, k = 4 (exact)", candidates.len());
    println!(
        "  members reported : {hits} ({} inserted, {false_pos} false positives)",
        inserted.len()
    );
    println!("  senses           : {} (independent of candidate count)", stats.senses);
    assert!(
        inserted.iter().all(|&key| filter.contains(key)),
        "Bloom filters never produce false negatives"
    );

    // Lose a partition: the exact screen under-reports, the k = H − 1
    // threshold keeps every true member — still one sense per stripe.
    dev.fc_overwrite("bloom-h1", &BitVec::zeros(candidates.len())).expect("zero partition 1");
    let (exact, _) = contains_batch(&mut dev, &ids, 4).expect("exact screen, degraded");
    let (relaxed, stats) = contains_batch(&mut dev, &ids, 3).expect("threshold screen");
    let lost =
        (0..candidates.len()).filter(|&j| filter.contains(candidates[j]) && !exact.get(j)).count();
    let kept =
        (0..candidates.len()).filter(|&j| filter.contains(candidates[j]) && relaxed.get(j)).count();
    let total = (0..candidates.len()).filter(|&j| filter.contains(candidates[j])).count();
    println!("\nafter losing partition 1:");
    println!("  exact (k=4) drops   : {lost} of {total} members");
    println!("  relaxed (k=3) keeps : {kept} of {total} members, {} senses", stats.senses);
    assert_eq!(kept, total, "threshold-(H-1) must keep every member");
}
