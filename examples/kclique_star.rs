//! K-clique star listing (KCS, §7): the workload where Flash-Cosmos
//! fuses a multi-operand AND and an OR into a *single* sensing operation
//! — the adjacency vectors live in one block (intra-block AND along the
//! NAND strings) and the clique vector in another (inter-block OR across
//! shared bitlines).
//!
//! Run with: `cargo run --example kclique_star`

use fc_ssd::SsdConfig;
use fc_workloads::kcs;
use flash_cosmos::engines::{Engines, Platform};
use flash_cosmos::FlashCosmosDevice;

fn main() {
    // --- functional mini instance --------------------------------------
    let (vertices, k, cliques) = (96, 5, 3);
    let instance = kcs::mini(vertices, k, cliques, 0xC11C);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).expect("load graph");

    println!("KCS mini: {vertices} vertices, {cliques} planted {k}-cliques");
    // All clique queries go down in one batched submission — the listing
    // workload is exactly the many-queries-one-pass shape.
    let out = dev.submit(&instance.batch()).expect("in-flash star batch");
    let mut pb_senses = 0;
    for (q, star) in instance.queries.iter().zip(&out.results) {
        assert_eq!(star, &q.expected);
        let (_, pb) = dev.parabit_read(&q.expr).expect("ParaBit star");
        pb_senses += pb.senses;
        println!("  {} → {} star members", q.label, star.count_ones());
    }
    println!("  Flash-Cosmos senses: {} (AND ∥ OR fused per stripe)", out.stats.senses);
    println!(
        "  batch critical path: {:.1} µs over {:.1} µs of chip time",
        out.stats.critical_path_us, out.stats.chip_time_us
    );
    println!("  ParaBit senses     : {pb_senses} (one per operand)");

    // --- paper-scale projection (Fig. 17c / 18c) -----------------------
    let engines = Engines::paper();
    println!("\npaper-scale KCS sweep (32M vertices, 1024 cliques), speedup over OSP:");
    println!("{:>6} {:>10} {:>10} {:>10}", "k", "ISP", "PB", "FC");
    for k in [8u32, 16, 24, 32, 48, 64] {
        let shape = kcs::paper_shape(k);
        let perf = engines.speedups_over_osp(&shape);
        let get = |p: Platform| perf.iter().find(|(q, _)| *q == p).map(|(_, x)| *x).unwrap();
        println!(
            "{:>6} {:>9.1}x {:>9.1}x {:>9.1}x",
            k,
            get(Platform::Isp),
            get(Platform::ParaBit),
            get(Platform::FlashCosmos),
        );
    }
    println!(
        "(paper: PB's benefit flattens beyond k=16 — serial sensing — while FC keeps scaling)"
    );

    // The whole sweep also evaluates as ONE batched pipeline run — the
    // cost-model analogue of the device's query-session submit.
    let shapes = kcs::paper_shapes(&[8, 16, 24, 32, 48, 64]);
    let merged = engines.evaluate_batch(Platform::FlashCosmos, &shapes);
    let serial: f64 =
        shapes.iter().map(|s| engines.evaluate(Platform::FlashCosmos, s).time_us()).sum();
    println!(
        "\nbatched FC evaluation of the whole sweep: {:.1} ms (vs {:.1} ms run-by-run)",
        merged.time_us() / 1e3,
        serial / 1e3
    );
}
