//! K-clique star listing (KCS, §7): the workload where Flash-Cosmos
//! fuses a multi-operand AND and an OR into a *single* sensing operation
//! — the adjacency vectors live in one block (intra-block AND along the
//! NAND strings) and the clique vector in another (inter-block OR across
//! shared bitlines).
//!
//! Run with: `cargo run --example kclique_star`

use fc_ssd::SsdConfig;
use fc_workloads::kcs;
use flash_cosmos::engines::{Engines, Platform};
use flash_cosmos::FlashCosmosDevice;

fn main() {
    // --- functional mini instance --------------------------------------
    let (vertices, k, cliques) = (96, 5, 3);
    let instance = kcs::mini(vertices, k, cliques, 0xC11C);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).expect("load graph");

    println!("KCS mini: {vertices} vertices, {cliques} planted {k}-cliques");
    let mut fc_senses = 0;
    let mut pb_senses = 0;
    for q in &instance.queries {
        let (star, stats) = dev.fc_read(&q.expr).expect("in-flash star");
        assert_eq!(star, q.expected);
        fc_senses += stats.senses;
        let (_, pb) = dev.parabit_read(&q.expr).expect("ParaBit star");
        pb_senses += pb.senses;
        println!("  {} → {} star members", q.label, star.count_ones());
    }
    println!("  Flash-Cosmos senses: {fc_senses} (AND ∥ OR fused per stripe)");
    println!("  ParaBit senses     : {pb_senses} (one per operand)");

    // --- paper-scale projection (Fig. 17c / 18c) -----------------------
    let engines = Engines::paper();
    println!("\npaper-scale KCS sweep (32M vertices, 1024 cliques), speedup over OSP:");
    println!("{:>6} {:>10} {:>10} {:>10}", "k", "ISP", "PB", "FC");
    for k in [8u32, 16, 24, 32, 48, 64] {
        let shape = kcs::paper_shape(k);
        let perf = engines.speedups_over_osp(&shape);
        let get = |p: Platform| perf.iter().find(|(q, _)| *q == p).map(|(_, x)| *x).unwrap();
        println!(
            "{:>6} {:>9.1}x {:>9.1}x {:>9.1}x",
            k,
            get(Platform::Isp),
            get(Platform::ParaBit),
            get(Platform::FlashCosmos),
        );
    }
    println!(
        "(paper: PB's benefit flattens beyond k=16 — serial sensing — while FC keeps scaling)"
    );
}
