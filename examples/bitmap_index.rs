//! Bitmap-index workload (BMI, §7): "How many users were active every
//! day for the past m months?"
//!
//! Runs a miniature functional instance end-to-end (in-flash AND over all
//! daily vectors + host-side bit-count), then projects the paper-scale
//! sweep through the platform engines (the Fig. 17a/18a rows).
//!
//! Run with: `cargo run --example bitmap_index`

use fc_ssd::SsdConfig;
use fc_workloads::bmi;
use flash_cosmos::engines::{Engines, Platform};
use flash_cosmos::{Expr, FlashCosmosDevice, QueryBatch};

fn main() {
    // --- functional mini instance --------------------------------------
    let days = 14;
    let users = 2048;
    let instance = bmi::mini(days, users, 0xB111);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).expect("load daily vectors");

    // A realistic index session: several dashboards ask overlapping
    // streak questions at once — submit them as one batch. Reordered and
    // repeated conjunctions dedup to a single pass each.
    let query = &instance.queries[0];
    let last_week = Expr::and_vars((days as usize - 7)..days as usize);
    let last_week_reordered = Expr::and_vars(((days as usize - 7)..days as usize).rev());
    let mut batch = QueryBatch::new();
    batch.push(query.expr.clone());
    batch.push(last_week.clone());
    batch.push(last_week_reordered); // same filter, different spelling
    batch.push(query.expr.clone()); // dashboard refresh → duplicate
    let out = dev.submit(&batch).expect("in-flash AND batch");
    assert_eq!(out.results[0], query.expected);
    assert_eq!(out.results[1], out.results[2]);

    println!("BMI mini: {users} users × {days} days, {} queries batched", out.stats.queries);
    println!("  users active every day : {}", bmi::count_active(&out.results[0]));
    println!("  users active last week : {}", bmi::count_active(&out.results[1]));
    println!(
        "  Flash-Cosmos senses    : {} ({} if serial, {} saved, {} dups)",
        out.stats.senses,
        out.stats.serial_senses,
        out.stats.senses_saved(),
        out.stats.deduped_queries
    );

    let (_, pb_stats) = dev.parabit_read(&query.expr).expect("ParaBit AND");
    println!("  ParaBit senses (1 qry) : {}", pb_stats.senses);

    // --- paper-scale projection (Fig. 17a / 18a) -----------------------
    let engines = Engines::paper();
    println!("\npaper-scale BMI sweep (800M users), speedup & energy gain over OSP:");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "m", "operands", "PB perf", "FC perf", "PB energy", "FC energy"
    );
    for months in [1u32, 3, 6, 12, 24, 36] {
        let shape = bmi::paper_shape(months);
        let perf = engines.speedups_over_osp(&shape);
        let energy = engines.energy_gains_over_osp(&shape);
        let get = |v: &[(Platform, f64)], p: Platform| {
            v.iter().find(|(q, _)| *q == p).map(|(_, x)| *x).unwrap()
        };
        println!(
            "{:>6} {:>10} {:>9.1}x {:>9.1}x {:>11.1}x {:>11.1}x",
            months,
            shape.and_operands,
            get(&perf, Platform::ParaBit),
            get(&perf, Platform::FlashCosmos),
            get(&energy, Platform::ParaBit),
            get(&energy, Platform::FlashCosmos),
        );
    }
    println!("(paper anchors: FC up to 198.4× perf and 1839× energy at m=36)");
}
