//! Bitmap-index workload (BMI, §7): "How many users were active every
//! day for the past m months?"
//!
//! Runs a miniature functional instance end-to-end (in-flash AND over all
//! daily vectors + host-side bit-count), then projects the paper-scale
//! sweep through the platform engines (the Fig. 17a/18a rows).
//!
//! Run with: `cargo run --example bitmap_index`

use fc_ssd::SsdConfig;
use fc_workloads::bmi;
use flash_cosmos::engines::{Engines, Platform};
use flash_cosmos::FlashCosmosDevice;

fn main() {
    // --- functional mini instance --------------------------------------
    let days = 14;
    let users = 2048;
    let instance = bmi::mini(days, users, 0xB111);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).expect("load daily vectors");

    let query = &instance.queries[0];
    let (result, stats) = dev.fc_read(&query.expr).expect("in-flash AND");
    assert_eq!(result, query.expected);
    let active = bmi::count_active(&result);
    println!("BMI mini: {users} users × {days} days");
    println!("  users active every day : {active}");
    println!("  Flash-Cosmos senses    : {}", stats.senses);

    let (_, pb_stats) = dev.parabit_read(&query.expr).expect("ParaBit AND");
    println!("  ParaBit senses         : {}", pb_stats.senses);

    // --- paper-scale projection (Fig. 17a / 18a) -----------------------
    let engines = Engines::paper();
    println!("\npaper-scale BMI sweep (800M users), speedup & energy gain over OSP:");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "m", "operands", "PB perf", "FC perf", "PB energy", "FC energy"
    );
    for months in [1u32, 3, 6, 12, 24, 36] {
        let shape = bmi::paper_shape(months);
        let perf = engines.speedups_over_osp(&shape);
        let energy = engines.energy_gains_over_osp(&shape);
        let get = |v: &[(Platform, f64)], p: Platform| {
            v.iter().find(|(q, _)| *q == p).map(|(_, x)| *x).unwrap()
        };
        println!(
            "{:>6} {:>10} {:>9.1}x {:>9.1}x {:>11.1}x {:>11.1}x",
            months,
            shape.and_operands,
            get(&perf, Platform::ParaBit),
            get(&perf, Platform::FlashCosmos),
            get(&energy, Platform::ParaBit),
            get(&energy, Platform::FlashCosmos),
        );
    }
    println!("(paper anchors: FC up to 198.4× perf and 1839× energy at m=36)");
}
