//! Hyper-dimensional computing in flash — one of the application domains
//! the paper's introduction motivates. The full HDC pipeline runs on
//! Flash-Cosmos primitives:
//!
//! 1. **bundle** each class's example hypervectors with an in-flash
//!    majority vote (AND/OR synthesis via `ops::at_least_k_of`);
//! 2. **similarity-match** a noisy query against the bundled prototypes
//!    with in-flash XNOR + host popcount.
//!
//! Run with: `cargo run --example hyperdimensional`

use fc_bits::BitVec;
use fc_ssd::SsdConfig;
use fc_workloads::hdc;
use flash_cosmos::{Expr, FlashCosmosDevice, StoreHints};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (classes, examples, dims) = (4, 5, 1024);
    let instance = hdc::mini(classes, examples, dims, 0x4DC0);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).expect("store example hypervectors");

    // Stage 1: bundle every class in-flash in ONE batched submission
    // (majority over each class's examples).
    println!("HDC: {classes} classes × {examples} examples × {dims}-bit hypervectors");
    let out = dev.submit(&instance.batch()).expect("in-flash majority bundles");
    let mut prototypes = Vec::new();
    for (c, (q, bundle)) in instance.queries.iter().zip(out.results).enumerate() {
        assert_eq!(bundle, q.expected);
        println!(
            "  class {c}: bundled with {:.1} senses (amortized)",
            out.stats.per_query[c].senses
        );
        // Store the prototype back for the matching stage.
        dev.fc_write(&format!("proto{c}"), &bundle, StoreHints::and_group(&format!("p{c}")))
            .expect("store prototype");
        prototypes.push(bundle);
    }
    println!("  total bundling senses: {}", out.stats.senses);

    // Stage 2: classify noisy queries by in-flash XNOR + host popcount.
    let mut rng = StdRng::seed_from_u64(0x9E0);
    let mut correct = 0;
    let trials = 4;
    for t in 0..trials {
        let class = t % classes;
        let mut query = prototypes[class].clone();
        query.flip_random_bits(dims / 6, &mut rng); // ~17% noise
        dev.fc_write(&format!("query{t}"), &query, StoreHints::and_group(&format!("q{t}")))
            .expect("store query");
        let qid = dev.operand(&format!("query{t}")).unwrap().id;

        // One batched submission matches the query against EVERY class
        // prototype (in-flash XNOR; host-side popcount per result).
        let pids: Vec<usize> =
            (0..classes).map(|c| dev.operand(&format!("proto{c}")).unwrap().id).collect();
        let sims =
            dev.submit(&hdc::similarity_batch(qid, &pids)).expect("in-flash XNOR similarity batch");
        // First-max tie-breaking (lowest class index wins a tie), like
        // fc_workloads::hdc::classify.
        let mut best = (0usize, 0usize);
        for (c, agreement) in sims.results.iter().enumerate() {
            let score = agreement.count_ones();
            if score > best.1 {
                best = (c, score);
            }
        }
        let hit = best.0 == class;
        correct += usize::from(hit);
        println!(
            "  query {t} (true class {class}) → class {} (agreement {}/{dims}) {}",
            best.0,
            best.1,
            if hit { "✓" } else { "✗" }
        );
    }
    println!("accuracy: {correct}/{trials}");
    assert_eq!(correct, trials, "17% noise should always classify correctly at 1024 dims");

    // Bonus: binding/unbinding round-trip in flash.
    let a = BitVec::random(dims, &mut rng);
    let b = BitVec::random(dims, &mut rng);
    dev.fc_write("bind-a", &a, StoreHints::and_group("ba")).unwrap();
    dev.fc_write("bind-b", &b, StoreHints::and_group("bb")).unwrap();
    let ia = dev.operand("bind-a").unwrap().id;
    let ib = dev.operand("bind-b").unwrap().id;
    let (bound, _) = dev.fc_read(&Expr::xor(Expr::var(ia), Expr::var(ib))).unwrap();
    dev.fc_write("bound", &bound, StoreHints::and_group("bc")).unwrap();
    let ic = dev.operand("bound").unwrap().id;
    let (unbound, _) = dev.fc_read(&Expr::xor(Expr::var(ic), Expr::var(ib))).unwrap();
    assert_eq!(unbound, a, "(a ⊗ b) ⊗ b = a");
    println!("bind/unbind identity verified in flash ✓");
}
