//! Image segmentation (IMS, §7): YUV color recognition as a 3-operand
//! bulk AND, plus the paper-scale observation that Flash-Cosmos and
//! ParaBit tie on this workload because moving the (huge) result
//! dominates (§8.1, observation six).
//!
//! Run with: `cargo run --example image_segmentation`

use fc_ssd::SsdConfig;
use fc_workloads::ims;
use flash_cosmos::engines::{Engines, Platform};
use flash_cosmos::FlashCosmosDevice;

fn main() {
    // --- functional mini instance --------------------------------------
    let (images, w, h) = (3, 20, 12);
    let instance = ims::mini(images, w, h, 0x135);
    let mut dev = FlashCosmosDevice::new(SsdConfig::tiny_test());
    instance.load(&mut dev).expect("load YUV masks");

    let q = &instance.queries[0];
    let (segmented, stats) = dev.fc_read(&q.expr).expect("in-flash segmentation");
    assert_eq!(segmented, q.expected);
    let pixels = images * w * h;
    println!("IMS mini: {images} images of {w}×{h}, 4 colors ({pixels} pixels)");
    println!("  pixel-color matches   : {}", segmented.count_ones());
    println!("  Flash-Cosmos senses   : {}", stats.senses);
    let (_, pb) = dev.parabit_read(&q.expr).expect("ParaBit segmentation");
    println!("  ParaBit senses        : {} (3 operands → 3× the senses)", pb.senses);

    // --- paper-scale projection (Fig. 17b / 18b) -----------------------
    let engines = Engines::paper();
    println!("\npaper-scale IMS sweep (800×600, 4 colors), speedup over OSP:");
    println!("{:>10} {:>10} {:>10} {:>10} {:>8}", "I", "ISP", "PB", "FC", "FC/PB");
    for i in [10_000u64, 50_000, 100_000, 200_000] {
        let shape = ims::paper_shape(i);
        let perf = engines.speedups_over_osp(&shape);
        let get = |p: Platform| perf.iter().find(|(q2, _)| *q2 == p).map(|(_, x)| *x).unwrap();
        let (isp, pb, fc) =
            (get(Platform::Isp), get(Platform::ParaBit), get(Platform::FlashCosmos));
        println!("{:>9}k {:>9.2}x {:>9.2}x {:>9.2}x {:>8.2}", i / 1000, isp, pb, fc, fc / pb);
    }
    println!("(paper: FC ≈ PB here — the up-to-44-GiB result transfer dominates both)");
}
